package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"gps/internal/core"
	"gps/internal/fault"
	"gps/internal/obs"
)

// snapshot is one immutable query view: a merged sampler frozen at a
// stream position, its pre-computed Algorithm 2 estimates, when it was
// taken, and whether the engine was degraded at that point (a shard had
// lost edges to a lossy recovery). Any number of goroutines may read it
// concurrently; nothing ever mutates it.
type snapshot struct {
	sampler  *core.Sampler
	est      core.Estimates
	taken    time.Time
	degraded bool
}

// errRefreshDeadline is returned when a refresh misses the deadline and no
// previous snapshot exists to fall back on.
var errRefreshDeadline = errors.New("snapshot refresh deadline exceeded and no cached snapshot to serve")

// snapshotCache serves staleness-bounded snapshots with single-flight
// refresh: readers whose bound is satisfied by the current snapshot load
// it lock-free; readers that need a fresher one join the in-flight
// refresh — the first of them starts it on a background goroutine, the
// rest wait on its completion channel. A snapshot also satisfies any
// bound when the stream position has not moved since it was taken — a
// forced-fresh query on an idle stream is free instead of rebuilding an
// identical snapshot.
//
// Running the refresh off the request goroutine is what makes graceful
// degradation possible: a reader with a deadline that expires mid-refresh
// falls back to the previous snapshot (flagged degraded) — or sheds with
// an error when none exists — while the refresh keeps running and
// installs its result for the next reader. Invalidation bumps a
// generation counter so a refresh that started before a flush can never
// install (or hand out) a snapshot that misses the flushed writes.
//
// The cache keeps the previous snapshot alive across a refresh: the
// engine's dirty-shard tracking makes the snapshot itself cheap when
// little has changed, and when the refreshed sampler turns out to cover
// the same arrivals as its predecessor (only duplicate edges came in), the
// predecessor's Algorithm 2 estimates are reused instead of recomputed —
// the post-stream scan is the dominant cost of a refresh.
type snapshotCache struct {
	take     func() (*core.Sampler, error)
	position func() uint64 // edges handed to the sampler so far
	degraded func() bool   // engine lossy-recovery flag, stamped per snapshot
	cur      atomic.Pointer[snapshot]

	// mu guards gen and inflight; unlike earlier revisions it is NOT held
	// across the refresh itself.
	mu       sync.Mutex
	gen      uint64     // bumped by invalidate; a refresh from an older gen discards
	inflight *refreshOp // the single in-flight refresh, nil when idle

	// onInstall, when set, is called (outside mu) with every snapshot that
	// actually installs — the snapshot-epoch feed the SSE subscription layer
	// fans out. Superseded refreshes never fire it, so subscribers only ever
	// see snapshots that queries could also have been served.
	onInstall func(*snapshot)

	met cacheMetrics
}

// refreshOp is one background refresh: done closes when it finishes, after
// which exactly one of snap/err is meaningful — or both nil when an
// invalidation superseded the refresh and waiters must retry.
type refreshOp struct {
	done chan struct{}
	snap *snapshot
	err  error
}

// cacheMetrics counts how the cache answered: hits (served an existing
// snapshot), refreshes (took a new one), forced-fresh demands (max_stale=0),
// refreshes cheap enough to reuse the previous estimates, and deadline
// expiries served from the stale fallback. The server registers them; the
// cache records them.
type cacheMetrics struct {
	hits       *obs.Counter
	refreshes  *obs.Counter
	forced     *obs.Counter
	estReuse   *obs.Counter
	staleServe *obs.Counter
}

func newSnapshotCache(take func() (*core.Sampler, error), position func() uint64, degraded func() bool) *snapshotCache {
	if degraded == nil {
		degraded = func() bool { return false }
	}
	return &snapshotCache{
		take:     take,
		position: position,
		degraded: degraded,
		met: cacheMetrics{
			hits:       obs.NewCounter(),
			refreshes:  obs.NewCounter(),
			forced:     obs.NewCounter(),
			estReuse:   obs.NewCounter(),
			staleServe: obs.NewCounter(),
		},
	}
}

// fresh reports whether s still satisfies the staleness bound: young
// enough, or provably current because no edges were processed since it was
// taken. (Streams carrying duplicate edges advance the processed count
// without advancing Arrivals, which only costs a conservative refresh.)
func (c *snapshotCache) fresh(s *snapshot, maxStale time.Duration) bool {
	return time.Since(s.taken) <= maxStale || s.est.Arrivals == c.position()
}

// get returns a snapshot no older than maxStale. A non-zero deadline
// bounds how long the caller waits for a refresh: past it, the previous
// snapshot is served with stale=true (the caller flags the response
// degraded), or errRefreshDeadline when there is none. deadline <= 0
// waits indefinitely, preserving strict freshness.
func (c *snapshotCache) get(maxStale, deadline time.Duration) (s *snapshot, stale bool, err error) {
	if maxStale == 0 {
		c.met.forced.Inc()
	}
	if s := c.cur.Load(); s != nil && c.fresh(s, maxStale) {
		c.met.hits.Inc()
		return s, false, nil
	}
	var expired <-chan time.Time
	if deadline > 0 {
		t := time.NewTimer(deadline)
		defer t.Stop()
		expired = t.C
	}
	for {
		c.mu.Lock()
		// A refresh that completed while this reader was joining may
		// already satisfy the bound.
		if s := c.cur.Load(); s != nil && c.fresh(s, maxStale) {
			c.mu.Unlock()
			c.met.hits.Inc()
			return s, false, nil
		}
		op := c.inflight
		if op == nil {
			op = &refreshOp{done: make(chan struct{})}
			c.inflight = op
			c.met.refreshes.Inc()
			go c.refresh(op, c.gen)
		}
		c.mu.Unlock()
		select {
		case <-op.done:
			if op.err != nil {
				return nil, false, op.err
			}
			if op.snap != nil {
				return op.snap, false, nil
			}
			// Superseded by an invalidation: retry against the new
			// generation so the caller never reads pre-flush state.
		case <-expired:
			if s := c.cur.Load(); s != nil {
				c.met.staleServe.Inc()
				return s, true, nil
			}
			return nil, false, errRefreshDeadline
		}
	}
}

// refresh performs one engine snapshot + estimate on its own goroutine and
// installs the result — unless the cache generation moved (a flush
// invalidated concurrently), in which case the result is discarded and
// waiters retry.
func (c *snapshotCache) refresh(op *refreshOp, gen uint64) {
	defer close(op.done)
	// Stamp the age before the engine snapshot: the data is frozen at the
	// barrier inside take(), so stamping afterwards would under-report the
	// snapshot's age by the whole snapshot+estimate duration.
	taken := time.Now()
	prev := c.cur.Load()
	sampler, err := c.take()
	if err != nil {
		c.finish(op, nil, err)
		return
	}
	degraded := c.degraded()
	if fault.Enabled() {
		// Between the engine barrier and the install: latency rules here
		// hold the refresh open past query deadlines (exercising the
		// stale-fallback path); error rules fail the refresh outright.
		if ferr := fault.Hit(fault.SnapshotRefresh); ferr != nil {
			c.finish(op, nil, ferr)
			return
		}
	}
	var est core.Estimates
	if prev != nil && prev.est.Arrivals == sampler.Arrivals() &&
		prev.est.SampledEdges == sampler.Reservoir().Len() {
		// No distinct edge reached the sampler since the previous
		// snapshot (the stream only replayed duplicates), so the engine —
		// deterministic in the edges fed — produced an identical
		// reservoir; the previous Algorithm 2 estimates are exact for it.
		est = prev.est
		c.met.estReuse.Inc()
	} else {
		est = core.EstimatePost(sampler)
	}
	c.finishInstall(op, &snapshot{sampler: sampler, est: est, taken: taken, degraded: degraded}, gen)
}

// finish publishes a refresh outcome that installs nothing.
func (c *snapshotCache) finish(op *refreshOp, s *snapshot, err error) {
	c.mu.Lock()
	op.snap, op.err = s, err
	c.inflight = nil
	c.mu.Unlock()
}

// finishInstall publishes a successful refresh, installing the snapshot
// only if no invalidation superseded the refresh's generation.
func (c *snapshotCache) finishInstall(op *refreshOp, s *snapshot, gen uint64) {
	c.mu.Lock()
	installed := c.gen == gen
	if installed {
		c.cur.Store(s)
		op.snap = s
	}
	c.inflight = nil
	c.mu.Unlock()
	if installed && c.onInstall != nil {
		c.onInstall(s)
	}
}

// invalidate drops the cached snapshot unless it already reflects the
// current stream position, and bumps the generation so an in-flight
// refresh that began before the invalidation can neither install nor be
// handed to waiters. The flush endpoint calls it to make
// flush-then-estimate read-your-writes at any staleness bound.
func (c *snapshotCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.cur.Load(); s != nil && s.est.Arrivals == c.position() {
		return // already current: a racing refresh can only be newer
	}
	c.cur.Store(nil)
	c.gen++
}

// current returns the cached snapshot (nil before the first query), for
// scrape-time estimator telemetry: the snapshot is immutable, so reading
// its sampler's counters is race-free.
func (c *snapshotCache) current() *snapshot { return c.cur.Load() }

// last reports when the current snapshot was taken and the stream position
// it covers; the zero time means no snapshot has been taken yet.
func (c *snapshotCache) last() (time.Time, uint64) {
	s := c.cur.Load()
	if s == nil {
		return time.Time{}, 0
	}
	return s.taken, s.est.Arrivals
}

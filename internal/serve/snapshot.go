package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"gps/internal/core"
	"gps/internal/obs"
)

// snapshot is one immutable query view: a merged sampler frozen at a
// stream position, its pre-computed Algorithm 2 estimates, and when it was
// taken. Any number of goroutines may read it concurrently; nothing ever
// mutates it.
type snapshot struct {
	sampler *core.Sampler
	est     core.Estimates
	taken   time.Time
}

// snapshotCache serves staleness-bounded snapshots with single-flight
// refresh: readers whose bound is satisfied by the current snapshot load
// it lock-free; readers that need a fresher one serialize on the mutex,
// where the first performs the refresh (engine snapshot + EstimatePost)
// and the rest find its result already installed when they get the lock.
// A snapshot also satisfies any bound when the stream position has not
// moved since it was taken — a forced-fresh query on an idle stream is
// free instead of rebuilding an identical snapshot.
//
// The cache keeps the previous snapshot alive across a refresh: the
// engine's dirty-shard tracking makes the snapshot itself cheap when
// little has changed, and when the refreshed sampler turns out to cover
// the same arrivals as its predecessor (only duplicate edges came in), the
// predecessor's Algorithm 2 estimates are reused instead of recomputed —
// the post-stream scan is the dominant cost of a refresh.
type snapshotCache struct {
	take     func() (*core.Sampler, error)
	position func() uint64 // edges handed to the sampler so far
	cur      atomic.Pointer[snapshot]
	mu       sync.Mutex
	met      cacheMetrics
}

// cacheMetrics counts how the cache answered: hits (served an existing
// snapshot), refreshes (took a new one), forced-fresh demands (max_stale=0),
// and refreshes cheap enough to reuse the previous estimates. The server
// registers them; the cache records them.
type cacheMetrics struct {
	hits      *obs.Counter
	refreshes *obs.Counter
	forced    *obs.Counter
	estReuse  *obs.Counter
}

func newSnapshotCache(take func() (*core.Sampler, error), position func() uint64) *snapshotCache {
	return &snapshotCache{
		take:     take,
		position: position,
		met: cacheMetrics{
			hits:      obs.NewCounter(),
			refreshes: obs.NewCounter(),
			forced:    obs.NewCounter(),
			estReuse:  obs.NewCounter(),
		},
	}
}

// fresh reports whether s still satisfies the staleness bound: young
// enough, or provably current because no edges were processed since it was
// taken. (Streams carrying duplicate edges advance the processed count
// without advancing Arrivals, which only costs a conservative refresh.)
func (c *snapshotCache) fresh(s *snapshot, maxStale time.Duration) bool {
	return time.Since(s.taken) <= maxStale || s.est.Arrivals == c.position()
}

// get returns a snapshot no older than maxStale.
func (c *snapshotCache) get(maxStale time.Duration) (*snapshot, error) {
	if maxStale == 0 {
		c.met.forced.Inc()
	}
	if s := c.cur.Load(); s != nil && c.fresh(s, maxStale) {
		c.met.hits.Inc()
		return s, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// A refresh that completed while this reader waited for the lock may
	// already satisfy the bound.
	if s := c.cur.Load(); s != nil && c.fresh(s, maxStale) {
		c.met.hits.Inc()
		return s, nil
	}
	c.met.refreshes.Inc()
	// Stamp the age before the engine snapshot: the data is frozen at the
	// barrier inside take(), so stamping afterwards would under-report the
	// snapshot's age by the whole snapshot+estimate duration.
	taken := time.Now()
	prev := c.cur.Load()
	sampler, err := c.take()
	if err != nil {
		return nil, err
	}
	var est core.Estimates
	if prev != nil && prev.est.Arrivals == sampler.Arrivals() &&
		prev.est.SampledEdges == sampler.Reservoir().Len() {
		// No distinct edge reached the sampler since the previous
		// snapshot (the stream only replayed duplicates), so the engine —
		// deterministic in the edges fed — produced an identical
		// reservoir; the previous Algorithm 2 estimates are exact for it.
		est = prev.est
		c.met.estReuse.Inc()
	} else {
		est = core.EstimatePost(sampler)
	}
	s := &snapshot{
		sampler: sampler,
		est:     est,
		taken:   taken,
	}
	c.cur.Store(s)
	return s, nil
}

// invalidate drops the cached snapshot unless it already reflects the
// current stream position. The flush endpoint calls it to make
// flush-then-estimate read-your-writes at any staleness bound. It takes
// the refresh mutex so an in-flight refresh that began before the flushed
// writes cannot install its (pre-flush) snapshot after the invalidation.
func (c *snapshotCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.cur.Load(); s != nil && s.est.Arrivals != c.position() {
		c.cur.Store(nil)
	}
}

// current returns the cached snapshot (nil before the first query), for
// scrape-time estimator telemetry: the snapshot is immutable, so reading
// its sampler's counters is race-free.
func (c *snapshotCache) current() *snapshot { return c.cur.Load() }

// last reports when the current snapshot was taken and the stream position
// it covers; the zero time means no snapshot has been taken yet.
func (c *snapshotCache) last() (time.Time, uint64) {
	s := c.cur.Load()
	if s == nil {
		return time.Time{}, 0
	}
	return s.taken, s.est.Arrivals
}

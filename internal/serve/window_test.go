package serve

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"gps/internal/core"
	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
)

// turnstileStream builds a timed turnstile stream over deduplicated base
// edges: insert at TS = position+1, with every 7th position also deleting
// the edge inserted lag positions earlier. Returns the records, the
// surviving timed edges (the ground-truth graph), and the deletion count.
func turnstileStream(base []graph.Edge, lag int) (records, survivors []graph.Edge, dels uint64) {
	seen := map[uint64]bool{}
	var uniq []graph.Edge
	for _, e := range base {
		if !seen[e.Key()] {
			seen[e.Key()] = true
			uniq = append(uniq, e)
		}
	}
	deleted := map[uint64]bool{}
	for i, e := range uniq {
		ts := uint64(i + 1)
		records = append(records, e.At(ts))
		if i%7 == 3 && i >= lag {
			victim := uniq[i-lag]
			if !deleted[victim.Key()] {
				deleted[victim.Key()] = true
				records = append(records, victim.At(ts).AsDeletion())
				dels++
			}
		}
	}
	for i, e := range uniq {
		if !deleted[e.Key()] {
			survivors = append(survivors, e.At(uint64(i+1)))
		}
	}
	return records, survivors, dels
}

// getEstimate fetches /v1/estimate with an optional ?window= parameter.
func getEstimate(t *testing.T, url, query string) estimateResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/estimate" + query)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("estimate%s: %d %s", query, resp.StatusCode, b)
	}
	return decodeJSON[estimateResponse](t, resp)
}

// TestServeWindowedExact drives a windowed turnstile server end to end:
// with capacity above the stream size every inclusion probability is 1, so
// window queries must return the exact counts of the surviving in-window
// subgraph, both wire formats must carry deletions, and the turnstile and
// window telemetry must surface in /v1/stats and /metrics.
func TestServeWindowedExact(t *testing.T) {
	base := gen.HolmeKim(120, 4, 0.5, 0x3D0)
	records, survivors, dels := turnstileStream(base, 40)
	span := uint64(len(survivors) + int(dels)) // uniq inserts
	window := span / 2

	_, ts := newTestServer(t, Config{
		Capacity: int(span) + 50, Seed: 5, Shards: 2,
		Window: window, PaneWidth: span / 8,
	})
	// Half the stream over the text wire (del markers), half binary (GPSB
	// v3): both decoders must carry turnstile records into the engine.
	half := len(records) / 2
	for _, c := range []struct {
		chunk  []graph.Edge
		binary bool
	}{{records[:half], false}, {records[half:], true}} {
		resp := postEdges(t, ts.URL, c.chunk, c.binary)
		if resp.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("ingest (binary=%v): %d %s", c.binary, resp.StatusCode, b)
		}
		resp.Body.Close()
	}
	flush(t, ts.URL)

	for _, q := range []struct {
		query string
		win   uint64
	}{{"", window}, {"?window=" + itoa(window/2), window / 2}} {
		est := getEstimate(t, ts.URL, q.query)
		wantEdges, wantTri, wantWedge := exact.Windowed(survivors, q.win, span)
		if est.Triangles != float64(wantTri) || est.Wedges != float64(wantWedge) || est.WindowEdges != float64(wantEdges) {
			t.Fatalf("window %d: estimate (tri=%v wedge=%v edges=%v), exact (%d, %d, %d)",
				q.win, est.Triangles, est.Wedges, est.WindowEdges, wantTri, wantWedge, wantEdges)
		}
		if est.Window != q.win || est.WindowHorizon != span || est.WindowPanes < 2 {
			t.Fatalf("window %d: geometry window=%d horizon=%d panes=%d", q.win, est.Window, est.WindowHorizon, est.WindowPanes)
		}
	}

	// Validation: oversized, malformed and zero windows are client errors.
	for _, bad := range []string{"?window=" + itoa(window+1), "?window=soon", "?window=0", "?window=-4"} {
		resp, err := http.Get(ts.URL + "/v1/estimate" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/estimate%s: %d, want 400", bad, resp.StatusCode)
		}
	}

	// Subgraph estimation needs a standing snapshot; windowed mode has none.
	resp, err := http.Post(ts.URL+"/v1/estimate/subgraph", "application/json",
		strings.NewReader(`{"edges":[[1,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("subgraph on windowed server: %d, want 400", resp.StatusCode)
	}

	// Turnstile and window telemetry: deletion records counted at ingest,
	// deletions applied by the panes, window geometry in stats and /metrics.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeJSON[StatsV1](t, resp)
	if st.DeletionRecords != dels {
		t.Fatalf("deletion_records = %d, want %d", st.DeletionRecords, dels)
	}
	if st.DeletionsApplied == 0 {
		t.Fatal("deletions_applied = 0 after turnstile ingest")
	}
	if st.Window != window || st.WindowPanes == nil || *st.WindowPanes < 2 || st.WindowHorizon == nil || *st.WindowHorizon != span {
		t.Fatalf("window stats: %+v", st)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"gps_window_width", "gps_window_pane_width", "gps_core_deletions_applied_total", "gps_serve_deletion_records_total"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
}

// TestServeWindowRequiresWindowedServer: ?window= on a plain server is a
// client error, not a silent full-graph answer.
func TestServeWindowRequiresWindowedServer(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 50, Seed: 1})
	resp, err := http.Get(ts.URL + "/v1/estimate?window=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?window= on plain server: %d, want 400", resp.StatusCode)
	}
}

// TestServeWindowedCheckpointRestartEquality is the windowed restart story:
// half a turnstile stream, POST /v1/checkpoint, boot a second server from
// the document (its geometry must win over the flags), finish the stream,
// and require window queries to equal those of an uninterrupted run.
func TestServeWindowedCheckpointRestartEquality(t *testing.T) {
	base := gen.HolmeKim(400, 5, 0.4, 0x77A)
	records, _, _ := turnstileStream(base, 60)
	span := uint64(len(base)) // upper bound; actual horizon is uniq count
	dir := t.TempDir()
	cfg := Config{Capacity: 200, Weight: core.TriangleWeight, WeightName: "triangle",
		Seed: 21, Shards: 2, Window: span / 2, PaneWidth: span / 10, CheckpointDir: dir}

	queryBoth := func(url string) (full, half estimateResponse) {
		full = getEstimate(t, url, "")
		half = getEstimate(t, url, "?window="+itoa(cfg.Window/2))
		// Wall-clock fields differ between servers by construction.
		full.SnapshotAgeMS, full.SnapshotUnixNS = 0, 0
		half.SnapshotAgeMS, half.SnapshotUnixNS = 0, 0
		return full, half
	}

	// Uninterrupted reference run.
	_, ref := newTestServer(t, cfg)
	postEdges(t, ref.URL, records, true).Body.Close()
	flush(t, ref.URL)
	wantFull, wantHalf := queryBoth(ref.URL)

	// First life: half the stream, then a durable checkpoint.
	cut := len(records) / 2
	_, ts1 := newTestServer(t, cfg)
	postEdges(t, ts1.URL, records[:cut], true).Body.Close()
	resp, err := http.Post(ts1.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	ck := decodeJSON[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %v", resp.StatusCode, ck)
	}
	if ck["position"].(float64) != float64(cut) {
		t.Fatalf("checkpoint position %v, want %d", ck["position"], cut)
	}

	// Second life: restore with deliberately wrong capacity/seed/geometry —
	// the checkpoint must win — then finish the stream.
	s2, ts2 := newTestServer(t, Config{Capacity: 7, Seed: 999, Window: 17,
		RestoreFrom: dir, CheckpointDir: dir})
	if s2.cfg.Capacity != cfg.Capacity || s2.cfg.Window != cfg.Window ||
		s2.cfg.PaneWidth != cfg.PaneWidth || s2.cfg.WeightName != "triangle" {
		t.Fatalf("restored config not taken from checkpoint: %+v", s2.cfg)
	}
	if _, pos := s2.Restored(); pos != uint64(cut) {
		t.Fatalf("restored position %d, want %d", pos, cut)
	}
	postEdges(t, ts2.URL, records[cut:], true).Body.Close()
	flush(t, ts2.URL)
	gotFull, gotHalf := queryBoth(ts2.URL)
	if gotFull != wantFull {
		t.Fatalf("full-window query diverged after restore:\n%+v\n%+v", gotFull, wantFull)
	}
	if gotHalf != wantHalf {
		t.Fatalf("half-window query diverged after restore:\n%+v\n%+v", gotHalf, wantHalf)
	}
}

func itoa(v uint64) string { return strconv.FormatUint(v, 10) }

// Tenant construction and restore: the one place in the serving layer that
// names the concrete engine shapes. Everything else in the package programs
// against engine.Stream, so the per-stream capability branches (windowed vs
// plain, decayed vs not) happen on data the interface reports — never on
// dynamic types. A grep-gated test enforces the boundary.
package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"gps/internal/checkpoint"
	"gps/internal/core"
	"gps/internal/engine"
	"gps/internal/obs"
)

// defaultStream is the stream every un-parameterized request addresses: a
// single-tenant deployment never has to know the registry exists.
const defaultStream = "default"

// maxCheckpointStreams bounds the stream count a multi-stream checkpoint
// directory may claim, so a forged header cannot drive an unbounded loop.
const maxCheckpointStreams = 1 << 10

// StreamSpec declares one named stream: the per-stream knobs of Config,
// JSON-shaped so the same struct serves the gps-serve -streams manifest and
// the POST /v1/streams/{name} body. Zero fields inherit the server's
// defaults; setting window or half_life replaces the server's time model
// for this stream outright instead of mixing with it.
type StreamSpec struct {
	Name       string  `json:"name"`
	Capacity   int     `json:"capacity,omitempty"`
	Weight     string  `json:"weight,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Shards     int     `json:"shards,omitempty"`
	HalfLife   float64 `json:"half_life,omitempty"`
	Window     uint64  `json:"window,omitempty"`
	PaneWidth  uint64  `json:"pane_width,omitempty"`
	QueueDepth int     `json:"queue_depth,omitempty"`
}

// tenant is one named stream: its engine, its ingest queue and loop, its
// snapshot cache and SSE hub, and every per-stream counter the handlers and
// telemetry read. (Named tenant, not stream — the package already imports
// gps/internal/stream.) The default tenant carries no metric label, which
// keeps a single-tenant server's /metrics output byte-identical to the
// pre-registry releases; every other tenant's samples are labeled
// {stream="name"} within the same families.
type tenant struct {
	name  string
	label []obs.Label // nil for the default stream
	cfg   Config      // per-stream effective configuration
	eng   engine.Stream
	snaps *snapshotCache
	subs  *subHub

	queue    chan ingestItem
	tdone    chan struct{} // closed when the stream is deleted
	loopDone chan struct{} // closed when the ingest loop has drained and exited
	deleted  atomic.Bool

	edgesAccepted  atomic.Uint64 // edges admitted to the queue
	edgesProcessed atomic.Uint64 // edges handed to the sampler (restored position on boot)
	batchesDropped atomic.Uint64 // ingest requests rejected by backpressure
	selfLoops      atomic.Uint64 // self-loop records skipped by the readers
	deletionRecs   atomic.Uint64 // turnstile deletion records accepted for ingest
	decayMode      atomic.Int32  // 0 undecided, 1 event-timed, 2 untimed (decayed streams only)
	pendingEdges   atomic.Int64
	pendingBatches atomic.Int64

	// At-least-once ingest dedup: the highest sequence number acknowledged
	// per X-GPS-Source, guarded by seqMu. Per stream, so two tenants fed by
	// clients that happen to share a source name cannot dedup each other.
	seqMu   sync.Mutex
	seqSeen map[string]uint64

	// Degradation and overload telemetry.
	inflightQueries  atomic.Int64
	shedTotal        atomic.Uint64 // requests shed by overload protection
	degradedQueries  atomic.Uint64 // estimate responses flagged degraded
	duplicateBatches atomic.Uint64 // ingest batches deduplicated by sequence
	ingestPanics     atomic.Uint64 // panics recovered in the ingest loop

	restoredPosition uint64 // stream position carried by the restoring checkpoint

	met serveMetrics
}

// windowed reports whether the tenant runs the sliding-window time model —
// the capability branch every handler takes instead of a type switch.
func (t *tenant) windowed() bool {
	_, ok := t.eng.WindowSpec()
	return ok
}

// newTenantState wires the per-stream machinery around an engine: the
// bounded queue, the snapshot cache (positioned at the restored stream
// position, so the cache's "provably current" check survives a restart),
// the SSE hub fed by snapshot installs, and the instruments the registry
// attaches later (created here so handlers never race a nil histogram).
func newTenantState(name string, cfg Config, eng engine.Stream, restoredPosition uint64) *tenant {
	t := &tenant{
		name:             name,
		cfg:              cfg,
		eng:              eng,
		subs:             newSubHub(),
		queue:            make(chan ingestItem, cfg.QueueDepth),
		tdone:            make(chan struct{}),
		loopDone:         make(chan struct{}),
		seqSeen:          make(map[string]uint64),
		restoredPosition: restoredPosition,
	}
	if name != defaultStream {
		t.label = []obs.Label{{Key: "stream", Value: name}}
	}
	t.edgesProcessed.Store(restoredPosition)
	t.met.snapAge = obs.NewHistogram(obs.Latency())
	t.met.decayRejects = obs.NewCounter()
	if t.windowed() {
		// Windowed queries merge panes fresh per request; the cache exists
		// only so its metric families and telemetry readers stay uniform.
		t.snaps = newSnapshotCache(func() (*core.Sampler, error) {
			return nil, errors.New("serve: windowed mode has no standing snapshot")
		}, t.edgesProcessed.Load, nil)
	} else {
		t.snaps = newSnapshotCache(eng.Snapshot, t.edgesProcessed.Load, eng.Degraded)
	}
	t.snaps.onInstall = t.subs.broadcast
	return t
}

// streamConfig resolves a StreamSpec against the server's defaults into the
// effective per-stream Config, validating the same invariants NewServer
// enforces for the default stream.
func (s *Server) streamConfig(spec StreamSpec) (Config, error) {
	cfg := s.cfg
	cfg.Streams = nil
	cfg.RestoreFrom = ""
	if spec.Capacity > 0 {
		cfg.Capacity = spec.Capacity
	}
	if spec.Weight != "" {
		wfn, err := WeightByName(spec.Weight)
		if err != nil {
			return Config{}, fmt.Errorf("stream %q: %w", spec.Name, err)
		}
		cfg.Weight, cfg.WeightName = wfn, spec.Weight
	}
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	if spec.Shards > 0 {
		cfg.Shards = spec.Shards
	}
	if spec.QueueDepth > 0 {
		cfg.QueueDepth = spec.QueueDepth
	}
	if spec.Window > 0 || spec.HalfLife > 0 || spec.PaneWidth > 0 {
		// The spec names a time model: it replaces the server's default one
		// wholesale (half-life and window would otherwise leak across).
		cfg.Window, cfg.PaneWidth, cfg.HalfLife = spec.Window, spec.PaneWidth, spec.HalfLife
	}
	if cfg.Window > 0 {
		if cfg.HalfLife > 0 {
			return Config{}, fmt.Errorf("stream %q: window and half_life are mutually exclusive (both reweight time)", spec.Name)
		}
		if cfg.PaneWidth == 0 {
			cfg.PaneWidth = cfg.Window
		}
	} else if cfg.PaneWidth != 0 {
		return Config{}, fmt.Errorf("stream %q: pane_width requires window > 0", spec.Name)
	}
	return cfg, nil
}

// newTenant constructs a fresh stream from its effective config — the one
// constructor site where the concrete engine shapes are chosen.
func newTenant(name string, cfg Config) (*tenant, error) {
	var eng engine.Stream
	if cfg.Window > 0 {
		win, err := engine.NewWindowed(engine.WindowConfig{
			Capacity:  cfg.Capacity,
			Weight:    cfg.Weight,
			Seed:      cfg.Seed,
			Shards:    cfg.Shards,
			PaneWidth: cfg.PaneWidth,
			Window:    cfg.Window,
		})
		if err != nil {
			return nil, err
		}
		eng = win
		cfg.Shards = win.Config().Shards // resolve the <=0 GOMAXPROCS default
	} else {
		par, err := engine.NewParallel(core.Config{
			Capacity: cfg.Capacity,
			Weight:   cfg.Weight,
			Seed:     cfg.Seed,
			Decay:    core.Decay{HalfLife: cfg.HalfLife},
		}, cfg.Shards)
		if err != nil {
			return nil, err
		}
		eng = par
		cfg.Shards = par.Shards() // resolve the <=0 GOMAXPROCS default
	}
	return newTenantState(name, cfg, eng, 0), nil
}

// peekKind sniffs the GPSC document kind without consuming the reader, so
// restore can dispatch between the single-stream readers and the
// multi-stream container while the full header stays in place for them.
func peekKind(br *bufio.Reader) (byte, error) {
	hdr, err := br.Peek(6) // "GPSC" + version + kind
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	return hdr[5], nil
}

// restoreSingle restores a single-stream checkpoint into the default
// tenant, preserving the pre-registry dispatch: the server's configured
// time model (not the file) picks the reader, so restoring a plain engine
// document into a -window server fails loudly instead of silently changing
// the time model. The checkpoint's configuration wins — restored reservoirs
// are only meaningful under the capacity/weight/shards (and decay/window
// geometry) they were taken with.
func restoreSingle(br *bufio.Reader, cfg Config) (*tenant, error) {
	var (
		eng        engine.Stream
		weightName string
		position   uint64
		err        error
	)
	if cfg.Window > 0 {
		var win *engine.Windowed
		win, weightName, err = engine.ReadWindowedCheckpoint(br, WeightByName)
		if err != nil {
			return nil, err
		}
		wc := win.Config()
		cfg.Capacity = wc.Capacity
		cfg.Shards = wc.Shards
		cfg.Seed = wc.Seed
		cfg.Window = wc.Window
		cfg.PaneWidth = wc.PaneWidth
		position = win.Processed()
		eng = win
	} else {
		var par *engine.Parallel
		par, weightName, err = engine.ReadParallelCheckpoint(br, WeightByName)
		if err != nil {
			return nil, err
		}
		cfg.Capacity = par.Capacity()
		cfg.Shards = par.Shards()
		cfg.HalfLife = par.Decay().HalfLife
		position = par.Processed()
		eng = par
	}
	cfg.WeightName = weightName
	cfg.Weight, _ = WeightByName(weightName)
	return newTenantState(defaultStream, cfg, eng, position), nil
}

// restoreMulti restores a KindMulti container: a Version3 directory
// document naming each stream and its engine kind, followed by the streams'
// ordinary engine/window documents back to back on the same reader. Each
// stream's configuration is recovered from its own document, exactly as a
// single-stream restore would; base supplies the server-wide fields
// (queue depth, body limits) every tenant shares.
func restoreMulti(br *bufio.Reader, base Config) ([]*tenant, error) {
	r := checkpoint.NewReader(br)
	if err := r.ExpectKind(checkpoint.KindMulti); err != nil {
		return nil, err
	}
	n := r.Count("stream", maxCheckpointStreams)
	type entry struct {
		name string
		kind byte
	}
	entries := make([]entry, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		name := r.String()
		kind := byte(r.Uvarint())
		if r.Err() != nil {
			return nil, r.Err()
		}
		if !validStreamName(name) {
			return nil, fmt.Errorf("checkpoint: multi-stream directory names invalid stream %q", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("checkpoint: multi-stream directory lists stream %q twice", name)
		}
		seen[name] = true
		entries = append(entries, entry{name, kind})
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	tenants := make([]*tenant, 0, len(entries))
	for _, e := range entries {
		cfg := base
		cfg.Streams = nil
		cfg.RestoreFrom = ""
		switch e.kind {
		case checkpoint.KindEngine:
			par, weightName, err := engine.ReadParallelDocument(br, WeightByName)
			if err != nil {
				return nil, fmt.Errorf("stream %q: %w", e.name, err)
			}
			cfg.Capacity = par.Capacity()
			cfg.Shards = par.Shards()
			cfg.HalfLife = par.Decay().HalfLife
			cfg.Window, cfg.PaneWidth = 0, 0
			cfg.WeightName = weightName
			cfg.Weight, _ = WeightByName(weightName)
			tenants = append(tenants, newTenantState(e.name, cfg, par, par.Processed()))
		case checkpoint.KindWindow:
			win, weightName, err := engine.ReadWindowedDocument(br, WeightByName)
			if err != nil {
				return nil, fmt.Errorf("stream %q: %w", e.name, err)
			}
			wc := win.Config()
			cfg.Capacity = wc.Capacity
			cfg.Shards = wc.Shards
			cfg.Seed = wc.Seed
			cfg.Window = wc.Window
			cfg.PaneWidth = wc.PaneWidth
			cfg.HalfLife = 0
			cfg.WeightName = weightName
			cfg.Weight, _ = WeightByName(weightName)
			tenants = append(tenants, newTenantState(e.name, cfg, win, win.Processed()))
		default:
			return nil, fmt.Errorf("checkpoint: multi-stream directory lists stream %q with unknown kind %#x", e.name, e.kind)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("checkpoint: trailing bytes after %d stream documents", len(tenants))
	}
	return tenants, nil
}

// writeMultiCheckpoint serializes several streams as one KindMulti
// container: the directory document (names and kinds, CRC-protected on its
// own), then each stream's ordinary checkpoint document back to back. The
// returned position is the sum of the per-stream positions, so checkpoint
// file names still order by total coverage.
func writeMultiCheckpoint(w io.Writer, tenants []*tenant) (position uint64, err error) {
	cw := checkpoint.NewWriterVersion(w, checkpoint.KindMulti, checkpoint.Version3)
	cw.Uvarint(uint64(len(tenants)))
	for _, t := range tenants {
		cw.String(t.name)
		kind := uint64(checkpoint.KindEngine)
		if t.windowed() {
			kind = checkpoint.KindWindow
		}
		cw.Uvarint(kind)
	}
	if err := cw.Finish(); err != nil {
		return 0, err
	}
	for _, t := range tenants {
		pos, err := t.eng.WriteCheckpoint(w, t.cfg.WeightName)
		if err != nil {
			return 0, fmt.Errorf("stream %q: %w", t.name, err)
		}
		position += pos
	}
	return position, nil
}

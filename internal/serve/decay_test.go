package serve

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gps/internal/graph"
	"gps/internal/stream"
)

// timedTestEdges builds a small clustered, timestamped batch.
func timedTestEdges(n int) []graph.Edge {
	var out []graph.Edge
	ts := uint64(100)
	for i := 0; len(out) < n; i++ {
		u := graph.NodeID(i % 97)
		v := graph.NodeID((i*7 + 1) % 97)
		if u == v {
			continue
		}
		out = append(out, graph.NewEdgeAt(u, v, ts))
		ts += 3
	}
	return out
}

// TestServeDecayedEstimates covers the service end of forward decay: a
// server started with HalfLife ingests a timestamped (GPSB v2) stream and
// answers decayed estimates, with the decay fields surfaced in
// /v1/estimate and /v1/stats, and the decayed configuration surviving a
// checkpoint → restore boot.
func TestServeDecayedEstimates(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		Capacity:      500,
		WeightName:    "triangle",
		Weight:        nil, // resolved below via WeightByName for parity with main.go
		Seed:          7,
		Shards:        2,
		HalfLife:      120,
		CheckpointDir: dir,
	})
	edges := timedTestEdges(400)
	resp := postEdges(t, ts.URL, edges, true)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()
	flushResp, err := http.Post(ts.URL+"/v1/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	flushResp.Body.Close()

	est := decodeJSON[map[string]any](t, mustGet(t, ts.URL+"/v1/estimate?max_stale=0s"))
	if est["decayed"] != true {
		t.Fatalf("estimate not decayed: %v", est)
	}
	if est["decay_half_life"].(float64) != 120 {
		t.Fatalf("decay_half_life = %v", est["decay_half_life"])
	}
	if est["decay_horizon"].(float64) <= 0 || est["decayed_edges"].(float64) <= 0 {
		t.Fatalf("decay fields missing: %v", est)
	}

	stats := decodeJSON[map[string]any](t, mustGet(t, ts.URL+"/v1/stats"))
	if stats["decay_half_life"].(float64) != 120 {
		t.Fatalf("stats decay_half_life = %v", stats["decay_half_life"])
	}
	if stats["decay_horizon"].(float64) <= 0 {
		t.Fatalf("stats decay_horizon = %v", stats["decay_horizon"])
	}

	// Persist and boot a second server from the checkpoint with *no*
	// -half-life flag: the checkpoint's decay configuration must win.
	ck, err := http.Post(ts.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	ck.Body.Close()
	files, _ := os.ReadDir(dir)
	if len(files) == 0 {
		t.Fatal("no checkpoint written")
	}
	s.Close()
	_, ts2 := newTestServer(t, Config{
		Capacity:    999, // overridden by the checkpoint
		WeightName:  "uniform",
		Seed:        9,
		RestoreFrom: filepath.Join(dir, files[len(files)-1].Name()),
	})
	est2 := decodeJSON[map[string]any](t, mustGet(t, ts2.URL+"/v1/estimate?max_stale=0s"))
	if est2["decayed"] != true || est2["decay_half_life"].(float64) != 120 {
		t.Fatalf("restored server lost decay config: %v", est2)
	}
}

// TestServeSelfLoopPolicy pins the unified reader policy at the HTTP edge:
// bodies carrying self loops are accepted in both formats, the loops are
// skipped, and the skip counts surface in the response and /v1/stats.
func TestServeSelfLoopPolicy(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 100, WeightName: "uniform", Seed: 1, Shards: 1})

	// Text body with a self loop.
	resp, err := http.Post(ts.URL+"/v1/ingest", "text/plain",
		strings.NewReader("1 2\n3 3\n2 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	body := decodeJSON[map[string]any](t, resp)
	if body["accepted"].(float64) != 2 || body["skipped_self_loops"].(float64) != 1 {
		t.Fatalf("text ingest response: %v", body)
	}

	// Binary body with a self loop (hand-built v1 records: 3-3 then 5-6).
	raw := append([]byte("GPSB\x01"), 0x03, 0x03, 0x05, 0x06)
	resp, err = http.Post(ts.URL+"/v1/ingest", "application/x-gps-edges",
		strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	body = decodeJSON[map[string]any](t, resp)
	if body["accepted"].(float64) != 1 || body["skipped_self_loops"].(float64) != 1 {
		t.Fatalf("binary ingest response: %v", body)
	}

	stats := decodeJSON[map[string]any](t, mustGet(t, ts.URL+"/v1/stats"))
	if stats["self_loops_skipped"].(float64) != 2 {
		t.Fatalf("stats self_loops_skipped = %v", stats["self_loops_skipped"])
	}
}

// TestServeDecayOverflowGuard pins the admission guard: batches that would
// push the decayed sampler past the representable span (≈1000 half-lives
// past the landmark) are rejected with 400 instead of crashing the process
// when the boost overflows inside a shard goroutine.
func TestServeDecayOverflowGuard(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 100, WeightName: "uniform", Seed: 1, Shards: 1, HalfLife: 10})

	ok := postEdges(t, ts.URL, []graph.Edge{graph.NewEdgeAt(1, 2, 100)}, true)
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("in-range batch rejected: %d", ok.StatusCode)
	}
	ok.Body.Close()
	flush, err := http.Post(ts.URL+"/v1/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	flush.Body.Close()

	// 100 + 1000×10 = 10100 is the admissible ceiling; far beyond it → 400.
	far := postEdges(t, ts.URL, []graph.Edge{graph.NewEdgeAt(3, 4, 100_000)}, true)
	if far.StatusCode != http.StatusBadRequest {
		t.Fatalf("overflow-range batch got %d, want 400", far.StatusCode)
	}
	far.Body.Close()

	// The server is still alive and serving.
	h := mustGet(t, ts.URL+"/healthz")
	if h.StatusCode != http.StatusOK {
		t.Fatalf("health after rejection: %d", h.StatusCode)
	}
	h.Body.Close()

	// Event times unrepresentably far *below* the landmark underflow to
	// zero weights — also rejected. Within one body both framings force
	// non-decreasing times, so the reachable path is cross-batch: a first
	// batch pins a high landmark, a later batch replays old events.
	_, tsU := newTestServer(t, Config{Capacity: 100, WeightName: "uniform", Seed: 1, Shards: 1, HalfLife: 10})
	pin := postEdges(t, tsU.URL, []graph.Edge{graph.NewEdgeAt(5, 6, 1_000_000)}, true)
	if pin.StatusCode != http.StatusAccepted {
		t.Fatalf("landmark-pinning batch got %d", pin.StatusCode)
	}
	pin.Body.Close()
	pf, err := http.Post(tsU.URL+"/v1/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	pf.Body.Close() // landmark is pinned once the pin batch has been routed
	under := postEdges(t, tsU.URL, []graph.Edge{graph.NewEdgeAt(7, 8, 1)}, true)
	if under.StatusCode != http.StatusBadRequest {
		t.Fatalf("below-landmark batch got %d, want 400", under.StatusCode)
	}
	under.Body.Close()

	// A timed stream cannot switch to untimed edges: the engine would stamp
	// clock positions incommensurate with the event-time landmark.
	sw := postEdges(t, ts.URL, []graph.Edge{graph.NewEdge(11, 12)}, true)
	if sw.StatusCode != http.StatusBadRequest {
		t.Fatalf("timed→untimed switch got %d, want 400", sw.StatusCode)
	}
	sw.Body.Close()

	// Mixed batches are rejected outright (text body: bare + timed rows).
	mixResp, err := http.Post(ts.URL+"/v1/ingest", "text/plain",
		strings.NewReader("21 22 500\n23 24 500\n"))
	if err != nil {
		t.Fatal(err)
	}
	if mixResp.StatusCode != http.StatusAccepted {
		t.Fatalf("uniformly timed text batch got %d", mixResp.StatusCode)
	}
	mixResp.Body.Close()

	// Untimed arrival-order decay is guarded by projected position too.
	_, ts2 := newTestServer(t, Config{Capacity: 100, WeightName: "uniform", Seed: 1, Shards: 1, HalfLife: 0.001})
	big := make([]graph.Edge, 0, 50)
	for i := 0; i < 50; i++ {
		big = append(big, graph.NewEdge(graph.NodeID(i), graph.NodeID(i+1000)))
	}
	resp := postEdges(t, ts2.URL, big, true)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("untimed overflow batch got %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// And an untimed stream cannot start mixing in event times... via a
	// mixed batch (the only way to smuggle both shapes into one body).
	_, ts3 := newTestServer(t, Config{Capacity: 100, WeightName: "uniform", Seed: 1, Shards: 1, HalfLife: 100})
	mixed := []graph.Edge{graph.NewEdge(1, 2), graph.NewEdgeAt(3, 4, 50)}
	var body bytes.Buffer
	if err := stream.WriteEdgeList(&body, mixed); err != nil {
		t.Fatal(err)
	}
	mresp, err := http.Post(ts3.URL+"/v1/ingest", "text/plain", &body)
	if err != nil {
		t.Fatal(err)
	}
	// The text reader's partial-column fallback already strips the mixed
	// timestamps, so this loads untimed and is accepted — the binary path
	// is where a truly mixed batch can arrive, and that is rejected.
	if mresp.StatusCode != http.StatusAccepted {
		t.Fatalf("text mixed batch (fallback-untimed) got %d", mresp.StatusCode)
	}
	mresp.Body.Close()
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

package serve

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gps/internal/checkpoint"
	"gps/internal/core"
	"gps/internal/gen"
)

// estimateBody fetches /v1/estimate with a zero staleness bound.
func estimateBody(t *testing.T, url string) estimateResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/estimate?max_stale=0s")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d", resp.StatusCode)
	}
	return decodeJSON[estimateResponse](t, resp)
}

// TestServeCheckpointRestartEquality is the service-level restart story:
// ingest half a stream, persist via POST /v1/checkpoint, boot a second
// server with RestoreFrom, ingest the remainder there, and require its
// estimates to equal byte-for-byte those of a server that saw the whole
// stream uninterrupted.
func TestServeCheckpointRestartEquality(t *testing.T) {
	edges := gen.HolmeKim(800, 5, 0.5, 0x1CE)
	dir := t.TempDir()
	cfg := Config{Capacity: 300, Weight: core.TriangleWeight, WeightName: "triangle",
		Seed: 44, Shards: 4, CheckpointDir: dir}

	// Uninterrupted reference run.
	_, ref := newTestServer(t, cfg)
	postEdges(t, ref.URL, edges, true).Body.Close()
	flush(t, ref.URL)
	want := estimateBody(t, ref.URL)

	// First life: half the stream, then a checkpoint.
	half := len(edges) / 2
	_, ts1 := newTestServer(t, cfg)
	postEdges(t, ts1.URL, edges[:half], true).Body.Close()
	resp, err := http.Post(ts1.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	ck := decodeJSON[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %v", resp.StatusCode, ck)
	}
	if ck["position"].(float64) != float64(half) {
		t.Fatalf("checkpoint position %v, want %d", ck["position"], half)
	}

	// Second life: restore (capacity/weight deliberately wrong in the
	// config — the checkpoint must win), finish the stream.
	s2, ts2 := newTestServer(t, Config{Capacity: 7, WeightName: "uniform", Seed: 999,
		RestoreFrom: dir, CheckpointDir: dir})
	if path, pos := s2.Restored(); pos != uint64(half) || path == "" {
		t.Fatalf("restored %q at %d, want position %d", path, pos, half)
	}
	if s2.cfg.Capacity != 300 || s2.cfg.WeightName != "triangle" || s2.cfg.Shards != 4 {
		t.Fatalf("restored config not taken from checkpoint: %+v", s2.cfg)
	}
	// An idle restored server must answer from the restored position
	// without a forced refresh loop (position counter resumed).
	mid := estimateBody(t, ts2.URL)
	if mid.Arrivals != uint64(half) {
		t.Fatalf("restored estimate arrivals %d, want %d", mid.Arrivals, half)
	}
	postEdges(t, ts2.URL, edges[half:], true).Body.Close()
	flush(t, ts2.URL)
	got := estimateBody(t, ts2.URL)

	if got.Triangles != want.Triangles || got.Wedges != want.Wedges ||
		got.TrianglesCI != want.TrianglesCI || got.WedgesCI != want.WedgesCI ||
		got.Threshold != want.Threshold || got.Arrivals != want.Arrivals ||
		got.SampledEdges != want.SampledEdges {
		t.Fatalf("restart-resumed estimates differ from uninterrupted run:\n%+v\nvs\n%+v", got, want)
	}
}

// TestServeCheckpointDownloadRoundTrip exercises the migration path:
// GET /v1/checkpoint streams a document a fresh server can boot from.
func TestServeCheckpointDownloadRoundTrip(t *testing.T) {
	edges := gen.HolmeKim(400, 4, 0.4, 0xD0)
	_, ts := newTestServer(t, Config{Capacity: 200, Seed: 3, Shards: 2})
	postEdges(t, ts.URL, edges, true).Body.Close()
	flush(t, ts.URL)
	want := estimateBody(t, ts.URL)

	resp, err := http.Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != checkpoint.ContentType {
		t.Fatalf("content type %q", ct)
	}
	doc, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "migrated"+checkpoint.FileExt)
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{RestoreFrom: path})
	got := estimateBody(t, ts2.URL)
	if got.Triangles != want.Triangles || got.Arrivals != want.Arrivals || got.Threshold != want.Threshold {
		t.Fatalf("migrated server differs: %+v vs %+v", got, want)
	}
}

// TestServePeriodicCheckpointAndRetention verifies the background
// checkpointer writes files and retention prunes them.
func TestServePeriodicCheckpointAndRetention(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Capacity: 100, Seed: 6,
		CheckpointDir: dir, CheckpointEvery: 10 * time.Millisecond, CheckpointKeep: 2})
	edges := gen.ErdosRenyi(100, 400, 9)
	postEdges(t, ts.URL, edges, true).Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.checkpointsWritten.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("periodic checkpointer wrote only %d files", s.checkpointsWritten.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Stop the checkpointer before inspecting the directory so pruning
	// cannot race the restore below (Close is idempotent; the test cleanup
	// calls it again harmlessly).
	ts.Close()
	s.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), checkpoint.FileExt) {
			ckpts++
		}
	}
	if ckpts > 2 {
		t.Fatalf("retention kept %d checkpoints, want <= 2", ckpts)
	}
	latest, err := checkpoint.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{RestoreFrom: latest})
	got := estimateBody(t, ts2.URL)
	if got.Arrivals != uint64(len(edges)) {
		t.Fatalf("latest periodic checkpoint covers %d arrivals, want %d", got.Arrivals, len(edges))
	}
}

// TestServeCheckpointWithoutDir pins the configuration errors.
func TestServeCheckpointWithoutDir(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 10, Seed: 1})
	resp, err := http.Post(ts.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("checkpoint without dir: %d", resp.StatusCode)
	}
	if _, err := NewServer(Config{Capacity: 10, RestoreFrom: filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("restore from missing path succeeded")
	}
}

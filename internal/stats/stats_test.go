package stats

import (
	"math"
	"testing"

	"gps/internal/randx"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestARE(t *testing.T) {
	if got := ARE(110, 100); !almost(got, 0.1, 1e-12) {
		t.Fatalf("ARE(110,100) = %v", got)
	}
	if got := ARE(90, 100); !almost(got, 0.1, 1e-12) {
		t.Fatalf("ARE(90,100) = %v", got)
	}
	if got := ARE(0, 0); got != 0 {
		t.Fatalf("ARE(0,0) = %v", got)
	}
	if got := ARE(5, 0); !math.IsInf(got, 1) {
		t.Fatalf("ARE(5,0) = %v", got)
	}
	if got := ARE(-90, -100); !almost(got, 0.1, 1e-12) {
		t.Fatalf("ARE(-90,-100) = %v", got)
	}
}

func TestMAREAndMax(t *testing.T) {
	est := []float64{110, 95, 100}
	act := []float64{100, 100, 100}
	if got := MARE(est, act); !almost(got, 0.05, 1e-12) {
		t.Fatalf("MARE = %v", got)
	}
	if got := MaxARE(est, act); !almost(got, 0.10, 1e-12) {
		t.Fatalf("MaxARE = %v", got)
	}
	if got := MARE(nil, nil); got != 0 {
		t.Fatalf("MARE(empty) = %v", got)
	}
}

func TestMAREPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	MARE([]float64{1}, []float64{1, 2})
}

func TestCI95(t *testing.T) {
	iv := CI95(100, 25) // sd 5 → ±9.8
	if !almost(iv.Lower, 100-9.8, 1e-9) || !almost(iv.Upper, 100+9.8, 1e-9) {
		t.Fatalf("CI95 = %+v", iv)
	}
	if !iv.Contains(100) || iv.Contains(50) {
		t.Fatal("Contains wrong")
	}
	if !almost(iv.Width(), 19.6, 1e-9) {
		t.Fatalf("Width = %v", iv.Width())
	}
	// Negative variance treated as zero.
	iv = CI95(10, -4)
	if iv.Lower != 10 || iv.Upper != 10 {
		t.Fatalf("CI95 negative var = %+v", iv)
	}
}

func TestRatioVarianceMonteCarlo(t *testing.T) {
	// X ~ N(100, 4), Y ~ N(50, 1), independent. Var(X/Y) by delta method:
	// 4/2500 + 10000·1/6.25e6 = 0.0016 + 0.0016 = 0.0032.
	want := RatioVariance(100, 50, 4, 1, 0)
	if !almost(want, 0.0032, 1e-9) {
		t.Fatalf("RatioVariance = %v", want)
	}
	rng := randx.New(1)
	var w Welford
	for i := 0; i < 200000; i++ {
		x := 100 + 2*rng.Normal()
		y := 50 + rng.Normal()
		w.Add(x / y)
	}
	if !almost(w.Variance(), want, 0.0005) {
		t.Fatalf("MC variance %v vs delta %v", w.Variance(), want)
	}
}

func TestRatioVarianceEdge(t *testing.T) {
	if got := RatioVariance(1, 0, 1, 1, 0); got != 0 {
		t.Fatalf("den=0: %v", got)
	}
	// Strong positive covariance can push the formula negative; clamp.
	if got := RatioVariance(100, 100, 1, 1, 50); got != 0 {
		t.Fatalf("clamped: %v", got)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d", w.Count())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", w.Mean())
	}
	// Sample variance of xs is 32/7.
	if !almost(w.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", w.Variance())
	}
	if w.StdErr() <= 0 {
		t.Fatalf("StdErr = %v", w.StdErr())
	}
	var empty Welford
	if empty.Mean() != 0 || empty.Variance() != 0 {
		t.Fatal("zero value not ready")
	}
}

func TestCovariance(t *testing.T) {
	var c Covariance
	// y = 2x → Cov = 2·Var(x).
	xs := []float64{1, 2, 3, 4, 5}
	for _, x := range xs {
		c.Add(x, 2*x)
	}
	if !almost(c.Value(), 5, 1e-12) { // Var(xs)=2.5, Cov=5
		t.Fatalf("Covariance = %v", c.Value())
	}
	if c.Count() != 5 {
		t.Fatalf("Count = %d", c.Count())
	}
	var indep Covariance
	rng := randx.New(2)
	for i := 0; i < 100000; i++ {
		indep.Add(rng.Normal(), rng.Normal())
	}
	if math.Abs(indep.Value()) > 0.02 {
		t.Fatalf("independent covariance = %v", indep.Value())
	}
}

// Package stats provides the error metrics and interval arithmetic used by
// the paper's evaluation (§6): absolute relative error (ARE), mean/max ARE
// over a time series (Table 3), 95% confidence bounds (Table 1, Figures 2-3),
// the delta-method variance of a ratio estimator (Eq. 11), and Welford
// accumulators for the Monte-Carlo unbiasedness tests.
package stats

import "math"

// ARE returns the absolute relative error |estimate-actual|/actual.
// For actual == 0 it returns 0 when the estimate is also 0 and +Inf
// otherwise.
func ARE(estimate, actual float64) float64 {
	if actual == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(estimate-actual) / math.Abs(actual)
}

// MARE returns the mean absolute relative error over paired series, the
// time-average error metric of Table 3. It panics on length mismatch and
// returns 0 for empty input.
func MARE(estimates, actuals []float64) float64 {
	if len(estimates) != len(actuals) {
		panic("stats: MARE length mismatch")
	}
	if len(estimates) == 0 {
		return 0
	}
	sum := 0.0
	for i := range estimates {
		sum += ARE(estimates[i], actuals[i])
	}
	return sum / float64(len(estimates))
}

// NRMSE returns the normalized root-mean-square error of a set of
// estimates of one quantity: sqrt(mean((estimate-actual)²))/|actual| —
// the accuracy-regression metric that, unlike a mean ARE, punishes
// variance and bias together. For actual == 0 it returns 0 when every
// estimate is also 0 and +Inf otherwise; empty input returns 0.
func NRMSE(estimates []float64, actual float64) float64 {
	if len(estimates) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range estimates {
		d := e - actual
		sum += d * d
	}
	if actual == 0 {
		if sum == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(sum/float64(len(estimates))) / math.Abs(actual)
}

// MaxARE returns the maximum absolute relative error over paired series.
func MaxARE(estimates, actuals []float64) float64 {
	if len(estimates) != len(actuals) {
		panic("stats: MaxARE length mismatch")
	}
	maxErr := 0.0
	for i := range estimates {
		if e := ARE(estimates[i], actuals[i]); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

// Z95 is the standard normal quantile used for 95% confidence intervals,
// as in the paper's X̂ ± 1.96·sqrt(Var[X̂]) bounds.
const Z95 = 1.96

// Interval is a two-sided confidence interval.
type Interval struct {
	Lower, Upper float64
}

// CI95 returns the 95% confidence interval x ± 1.96·√variance. Negative
// variances (possible for unbiased variance *estimators* in small samples)
// are treated as zero.
func CI95(x, variance float64) Interval {
	if variance < 0 || math.IsNaN(variance) {
		variance = 0
	}
	half := Z95 * math.Sqrt(variance)
	return Interval{Lower: x - half, Upper: x + half}
}

// Contains reports whether v lies in the closed interval.
func (iv Interval) Contains(v float64) bool {
	return iv.Lower <= v && v <= iv.Upper
}

// Width returns the interval width.
func (iv Interval) Width() float64 { return iv.Upper - iv.Lower }

// RatioVariance returns the delta-method approximation (Eq. 11) of
// Var(num/den) given the variances of numerator and denominator and their
// covariance:
//
//	Var(N/D) ≈ Var(N)/D² + N²·Var(D)/D⁴ − 2·N·Cov(N,D)/D³
//
// It returns 0 when den == 0.
func RatioVariance(num, den, varNum, varDen, cov float64) float64 {
	if den == 0 {
		return 0
	}
	d2 := den * den
	v := varNum/d2 + num*num*varDen/(d2*d2) - 2*num*cov/(d2*den)
	if v < 0 {
		// The delta-method combination of unbiased variance estimates
		// can come out slightly negative; clamp for downstream CIs.
		return 0
	}
	return v
}

// Welford accumulates a running mean and variance in a numerically stable
// way. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 1 {
		return 0
	}
	return math.Sqrt(w.Variance() / float64(w.n))
}

// Covariance accumulates a running covariance between paired observations.
// The zero value is ready to use.
type Covariance struct {
	n        int64
	meanX    float64
	meanY    float64
	comoment float64
}

// Add records one paired observation.
func (c *Covariance) Add(x, y float64) {
	c.n++
	dx := x - c.meanX
	c.meanX += dx / float64(c.n)
	c.meanY += (y - c.meanY) / float64(c.n)
	c.comoment += dx * (y - c.meanY)
}

// Value returns the unbiased sample covariance (0 with fewer than two
// observations).
func (c *Covariance) Value() float64 {
	if c.n < 2 {
		return 0
	}
	return c.comoment / float64(c.n-1)
}

// Count returns the number of paired observations.
func (c *Covariance) Count() int64 { return c.n }

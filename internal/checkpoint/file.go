package checkpoint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"gps/internal/fault"
)

// WriteFileAtomic writes a checkpoint produced by write to path with
// crash-safe visibility: the content goes to a temporary file in the same
// directory, is fsynced, and is renamed over path only once complete, so a
// reader (or a crash) never observes a half-written checkpoint. It returns
// the number of bytes written.
func WriteFileAtomic(path string, write func(io.Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return 0, err
	}
	if fault.Enabled() {
		// Fires with the payload written but unsynced — the disk-full /
		// I/O-error window; the deferred cleanup removes the temporary, so
		// the previous checkpoint at path stays intact.
		if err := fault.Hit(fault.CheckpointWrite); err != nil {
			return 0, fmt.Errorf("checkpoint: %w", err)
		}
	}
	n, err := tmp.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	syncStart := time.Now()
	if err := tmp.Sync(); err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	if fault.Enabled() {
		if err := fault.Hit(fault.CheckpointFsync); err != nil {
			return 0, fmt.Errorf("checkpoint: %w", err)
		}
	}
	observeFsync(syncStart)
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	tmp = nil
	if fault.Enabled() {
		if err := fault.Hit(fault.CheckpointRename); err != nil {
			os.Remove(name)
			return 0, fmt.Errorf("checkpoint: %w", err)
		}
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	// Make the rename itself durable. Directory fsync is best-effort: some
	// filesystems refuse to sync directories, and the data is safe either way.
	SyncDir(dir)
	fileBytes.Observe(uint64(n))
	filesWritten.Inc()
	return n, nil
}

// SyncDir best-effort fsyncs a directory, making completed renames in it
// durable across power loss. Callers that rename a checkpoint after
// WriteFileAtomic must call it again for the second rename.
func SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// files returns the checkpoint files (FileExt suffix, temporaries excluded)
// in dir, sorted ascending by name. Zero-padded sequence names therefore
// sort oldest first.
func files(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.Type().IsRegular() && strings.HasSuffix(e.Name(), FileExt) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Latest returns the path of the newest checkpoint file in dir (greatest
// name in sort order). It returns os.ErrNotExist (wrapped) when dir holds no
// checkpoint files.
func Latest(dir string) (string, error) {
	names, err := files(dir)
	if err != nil {
		return "", err
	}
	if len(names) == 0 {
		return "", fmt.Errorf("checkpoint: no %s files in %s: %w", FileExt, dir, os.ErrNotExist)
	}
	return filepath.Join(dir, names[len(names)-1]), nil
}

// Prune removes the oldest checkpoint files in dir until at most keep
// remain. keep < 1 is treated as 1: pruning never deletes the only
// checkpoint.
func Prune(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	names, err := files(dir)
	if err != nil {
		return err
	}
	for _, name := range names[:max(0, len(names)-keep)] {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	return nil
}

// ResolvePath resolves a restore source: a file path is returned as is, and
// a directory resolves to its newest checkpoint file.
func ResolvePath(p string) (string, error) {
	info, err := os.Stat(p)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if info.IsDir() {
		return Latest(p)
	}
	return p, nil
}

// Package checkpoint defines GPSC, the durable binary snapshot format of
// the GPS sampling data plane, and the primitives its encoders and decoders
// share. GPSC is the sibling of the GPSB edge framing in internal/stream:
// where GPSB makes a stream durable, GPSC makes the *summary* of a stream
// durable — the paper's central object, a bounded reservoir that is a
// sufficient statistic for an unbounded stream, serialized so a process can
// restart (or migrate hosts) without discarding hours of ingestion.
//
// # Format
//
// Every GPSC document is
//
//	"GPSC" | version (1 byte) | kind (1 byte) | payload | crc32 (4 bytes LE)
//
// where the payload layout is fixed by the kind (sampler, engine, or
// in-stream estimator; see the core and engine packages for the payload
// specs) and the trailing CRC-32 (IEEE) covers every preceding byte,
// including the header. Payload scalars are little-endian fixed-width words
// or uvarints; records are self-delimiting, so documents can be embedded
// back to back (the engine container holds one sampler document per shard).
//
// # Decoder contract
//
// Decoders built on Reader are strict: a wrong magic, an unknown version or
// kind, a truncated word, an oversized varint, or a checksum mismatch all
// return errors — never a panic — and nothing is allocated based on
// untrusted lengths: claimed counts only ever drive loops whose every
// iteration consumes input, so memory grows in proportion to bytes actually
// parsed, not to what a forged header promises.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Format constants.
const (
	// Version is the baseline GPSC format version. Version2 documents add
	// the forward-decay state (decay parameters, landmark, horizon, and
	// per-entry event timestamps); encoders emit it only for decayed
	// samplers, so undecayed checkpoints stay byte-identical to earlier
	// releases, and decoders accept both (a Version document restores as
	// undecayed). Version3 documents add the turnstile block — a feature
	// flags word selecting the decay section and the deletion counters — and
	// back the KindWindow pane-chain container; encoders emit Version3 only
	// for state earlier versions cannot carry, so v1/v2 documents stay
	// byte-identical and every state keeps exactly one serialized form.
	Version  = 1
	Version2 = 2
	Version3 = 3

	// Document kinds: the byte after the version selects the payload layout.
	KindSampler  = 0x01 // one core.Sampler
	KindEngine   = 0x02 // an engine.Parallel container of per-shard samplers
	KindInStream = 0x03 // a core.InStream (sampler + estimator accumulators)
	KindWindow   = 0x04 // an engine.Windowed pane chain (retired panes + active engine)
	KindMulti    = 0x05 // a multi-stream container: a named directory of engine/window documents

	// ContentType is the MIME type the service uses when a checkpoint
	// travels over HTTP (GET /v1/checkpoint).
	ContentType = "application/x-gps-checkpoint"

	// FileExt is the conventional extension of checkpoint files; Latest and
	// Prune only consider files carrying it.
	FileExt = ".gpsc"

	// MaxStringLen bounds every length-prefixed string in a GPSC document
	// (weight names); longer claims are rejected before allocation.
	MaxStringLen = 256
)

// magic starts every GPSC document.
const magic = "GPSC"

// ErrChecksum is returned (wrapped) when a document's trailing CRC does not
// match its content.
var ErrChecksum = errors.New("checkpoint: checksum mismatch")

// Writer encodes one GPSC document. Construct with NewWriter (which emits
// the header), write the payload with the typed methods, and call Finish to
// append the checksum and flush. Errors latch: after the first failure every
// method is a no-op and Finish reports the error.
type Writer struct {
	w   *bufio.Writer
	crc uint32
	err error
}

// NewWriter returns a Writer over w with the version-1 GPSC header for the
// given kind already written.
func NewWriter(w io.Writer, kind byte) *Writer {
	return NewWriterVersion(w, kind, Version)
}

// NewWriterVersion is NewWriter with an explicit format version; encoders
// pick Version2 when the payload carries forward-decay state.
func NewWriterVersion(w io.Writer, kind, version byte) *Writer {
	cw := &Writer{w: bufio.NewWriter(w)}
	if version != Version && version != Version2 && version != Version3 {
		cw.err = fmt.Errorf("checkpoint: cannot write unknown GPSC version %d", version)
		return cw
	}
	cw.Raw([]byte(magic))
	cw.Raw([]byte{version, kind})
	return cw
}

// Raw appends bytes verbatim (checksummed like everything else).
func (w *Writer) Raw(b []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, crc32.IEEETable, b)
	_, w.err = w.w.Write(b)
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	w.Raw(buf[:binary.PutUvarint(buf[:], v)])
}

// U32 appends a fixed-width little-endian uint32.
func (w *Writer) U32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.Raw(buf[:])
}

// U64 appends a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.Raw(buf[:])
}

// F64 appends a float64 as its IEEE-754 bits (little-endian).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String appends a length-prefixed string. Strings longer than MaxStringLen
// fail the writer: they could never be decoded.
func (w *Writer) String(s string) {
	if w.err == nil && len(s) > MaxStringLen {
		w.err = fmt.Errorf("checkpoint: string of %d bytes exceeds limit %d", len(s), MaxStringLen)
		return
	}
	w.Uvarint(uint64(len(s)))
	w.Raw([]byte(s))
}

// Finish appends the CRC-32 of everything written so far, flushes, and
// returns the first error encountered.
func (w *Writer) Finish() error {
	if w.err != nil {
		return w.err
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], w.crc)
	if _, err := w.w.Write(buf[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// Err returns the writer's latched error, if any.
func (w *Writer) Err() error { return w.err }

// Reader decodes one GPSC document. Construct with NewReader, check the
// header with Header, read the payload with the typed methods, and call
// Finish to verify the checksum. Errors latch: after the first failure every
// method returns the zero value and Err reports the failure, so decode loops
// must test Err (or the method's error effect via Err) each iteration.
type Reader struct {
	br      *bufio.Reader
	crc     uint32
	err     error
	version byte
}

// NewReader returns a Reader over r. When r is itself a *bufio.Reader it is
// used directly, so back-to-back embedded documents can share one reader
// without losing buffered bytes between them.
func NewReader(r io.Reader) *Reader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &Reader{br: br}
}

// Err returns the reader's latched error, if any.
func (r *Reader) Err() error { return r.err }

// fail latches err (wrapped with context) and returns it.
func (r *Reader) fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	return r.err
}

// noEOF maps a bare io.EOF to io.ErrUnexpectedEOF: inside a document any
// end of input is a truncation, never a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// readFull reads exactly len(b) bytes into b, checksumming them.
func (r *Reader) readFull(b []byte) error {
	if r.err != nil {
		return r.err
	}
	if _, err := io.ReadFull(r.br, b); err != nil {
		return r.fail(fmt.Errorf("checkpoint: %w", noEOF(err)))
	}
	r.crc = crc32.Update(r.crc, crc32.IEEETable, b)
	return nil
}

// Header reads and validates the GPSC header, returning the document kind.
func (r *Reader) Header() (kind byte, err error) {
	var hdr [len(magic) + 2]byte
	if err := r.readFull(hdr[:]); err != nil {
		return 0, err
	}
	if string(hdr[:len(magic)]) != magic {
		return 0, r.fail(errors.New("checkpoint: not a GPSC document (bad magic)"))
	}
	switch hdr[len(magic)] {
	case Version, Version2, Version3:
		r.version = hdr[len(magic)]
	default:
		return 0, r.fail(fmt.Errorf("checkpoint: unsupported GPSC version %d", hdr[len(magic)]))
	}
	kind = hdr[len(magic)+1]
	switch kind {
	case KindSampler, KindEngine, KindInStream:
		return kind, nil
	case KindWindow:
		if r.version != Version3 {
			return 0, r.fail(fmt.Errorf("checkpoint: window document requires GPSC version %d, got %d",
				Version3, r.version))
		}
		return kind, nil
	case KindMulti:
		// Introduced with the multi-stream serving plane, after the
		// turnstile format: only Version3 encoders ever emit it.
		if r.version != Version3 {
			return 0, r.fail(fmt.Errorf("checkpoint: multi-stream document requires GPSC version %d, got %d",
				Version3, r.version))
		}
		return kind, nil
	}
	return 0, r.fail(fmt.Errorf("checkpoint: unknown document kind %#x", kind))
}

// Version returns the format version of the document whose header has been
// read (0 before Header). Payload decoders branch on it for version-gated
// sections.
func (r *Reader) Version() byte { return r.version }

// ExpectKind reads the header and fails unless the document has the given
// kind.
func (r *Reader) ExpectKind(kind byte) error {
	got, err := r.Header()
	if err != nil {
		return err
	}
	if got != kind {
		return r.fail(fmt.Errorf("checkpoint: document kind %#x, want %#x", got, kind))
	}
	return nil
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		b, err := r.br.ReadByte()
		if err != nil {
			r.fail(fmt.Errorf("checkpoint: varint: %w", noEOF(err)))
			return 0
		}
		r.crc = crc32.Update(r.crc, crc32.IEEETable, []byte{b})
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			if shift == 63 && b > 1 {
				r.fail(errors.New("checkpoint: varint overflows uint64"))
				return 0
			}
			return v
		}
	}
	r.fail(errors.New("checkpoint: varint too long"))
	return 0
}

// Count reads a uvarint length/count field that must fit in an int and not
// exceed max. It is the bounds-checked form every slice length must use.
func (r *Reader) Count(what string, max uint64) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v > max {
		r.fail(fmt.Errorf("checkpoint: %s count %d exceeds limit %d", what, v, max))
		return 0
	}
	return int(v)
}

// U32 reads a fixed-width little-endian uint32.
func (r *Reader) U32() uint32 {
	var buf [4]byte
	if r.readFull(buf[:]) != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(buf[:])
}

// U64 reads a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	var buf [8]byte
	if r.readFull(buf[:]) != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// FiniteF64 reads a float64 and fails on NaN or ±Inf.
func (r *Reader) FiniteF64(what string) float64 {
	v := r.F64()
	if r.err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
		r.fail(fmt.Errorf("checkpoint: %s is not finite", what))
		return 0
	}
	return v
}

// String reads a length-prefixed string of at most MaxStringLen bytes.
func (r *Reader) String() string {
	n := r.Count("string length", MaxStringLen)
	if r.err != nil || n == 0 {
		return ""
	}
	buf := make([]byte, n)
	if r.readFull(buf) != nil {
		return ""
	}
	return string(buf)
}

// Finish reads the document's trailing CRC and verifies it against the
// bytes consumed so far. It must be called exactly once, after the payload.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	want := r.crc // captured before the trailer is read (it is not covered)
	var buf [4]byte
	if _, err := io.ReadFull(r.br, buf[:]); err != nil {
		return r.fail(fmt.Errorf("checkpoint: checksum: %w", noEOF(err)))
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != want {
		return r.fail(fmt.Errorf("%w: document says %#08x, content hashes to %#08x", ErrChecksum, got, want))
	}
	return nil
}

package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeDoc builds a small sampler-kind document exercising every scalar
// encoder.
func writeDoc(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, KindSampler)
	w.Uvarint(42)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.F64(3.5)
	w.String("triangle")
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	doc := writeDoc(t)
	r := NewReader(bytes.NewReader(doc))
	if err := r.ExpectKind(KindSampler); err != nil {
		t.Fatal(err)
	}
	if got := r.Uvarint(); got != 42 {
		t.Fatalf("uvarint = %d", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("u32 = %#x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Fatalf("u64 = %#x", got)
	}
	if got := r.F64(); got != 3.5 {
		t.Fatalf("f64 = %v", got)
	}
	if got := r.String(); got != "triangle" {
		t.Fatalf("string = %q", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationEverywhere(t *testing.T) {
	doc := writeDoc(t)
	for cut := 0; cut < len(doc); cut++ {
		r := NewReader(bytes.NewReader(doc[:cut]))
		err := r.ExpectKind(KindSampler)
		if err == nil {
			r.Uvarint()
			r.U32()
			r.U64()
			r.F64()
			_ = r.String()
			err = r.Finish()
		}
		if err == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(doc))
		}
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d surfaced as clean EOF: %v", cut, err)
		}
	}
}

func TestChecksumMismatch(t *testing.T) {
	doc := writeDoc(t)
	for bit := 0; bit < 8; bit++ {
		corrupt := append([]byte(nil), doc...)
		corrupt[len(corrupt)/2] ^= 1 << bit
		r := NewReader(bytes.NewReader(corrupt))
		err := r.ExpectKind(KindSampler)
		if err == nil {
			r.Uvarint()
			r.U32()
			r.U64()
			r.F64()
			_ = r.String()
			err = r.Finish()
		}
		if err == nil {
			t.Fatalf("bit flip %d not detected", bit)
		}
	}
}

func TestHeaderRejections(t *testing.T) {
	cases := [][]byte{
		[]byte("GPSB\x01\x01"), // wrong magic
		[]byte("GPSC\x04\x01"), // future version (v1, v2 and v3 are supported)
		[]byte("GPSC\x01\x7f"), // unknown kind
		[]byte("GPS"),          // truncated magic
		{},                     // empty
		[]byte("GPSC\x01\x02"), // engine kind where sampler expected
	}
	for i, raw := range cases {
		r := NewReader(bytes.NewReader(raw))
		if err := r.ExpectKind(KindSampler); err == nil {
			t.Fatalf("case %d: header accepted", i)
		}
	}
	// Both live versions are accepted and reported.
	for _, v := range []byte{Version, Version2, Version3} {
		r := NewReader(bytes.NewReader([]byte{'G', 'P', 'S', 'C', v, KindSampler}))
		if err := r.ExpectKind(KindSampler); err != nil {
			t.Fatalf("version %d rejected: %v", v, err)
		}
		if r.Version() != v {
			t.Fatalf("Version() = %d, want %d", r.Version(), v)
		}
	}
}

func TestVarintOverflow(t *testing.T) {
	raw := append([]byte("GPSC\x01\x01"), bytes.Repeat([]byte{0xff}, 10)...)
	r := NewReader(bytes.NewReader(raw))
	if err := r.ExpectKind(KindSampler); err != nil {
		t.Fatal(err)
	}
	r.Uvarint()
	if r.Err() == nil {
		t.Fatal("10-byte varint with high bits accepted")
	}
}

func TestCountBound(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, KindSampler)
	w.Uvarint(1 << 40)
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if err := r.ExpectKind(KindSampler); err != nil {
		t.Fatal(err)
	}
	if n := r.Count("arena", 1<<20); n != 0 || r.Err() == nil {
		t.Fatalf("oversized count passed: n=%d err=%v", n, r.Err())
	}
}

func TestStringTooLong(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, KindSampler)
	w.String(strings.Repeat("x", MaxStringLen+1))
	if w.Err() == nil {
		t.Fatal("writer accepted oversized string")
	}
}

func TestEmbeddedDocumentsShareReader(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		w := NewWriter(&buf, KindSampler)
		w.Uvarint(uint64(i))
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	br := NewReader(bytes.NewReader(buf.Bytes()))
	for i := 0; i < 3; i++ {
		// Each embedded document gets a fresh Reader over the shared
		// buffered stream, the way the engine container decodes shards.
		r := NewReader(br.br)
		if err := r.ExpectKind(KindSampler); err != nil {
			t.Fatal(err)
		}
		if got := r.Uvarint(); got != uint64(i) {
			t.Fatalf("doc %d decoded %d", i, got)
		}
		if err := r.Finish(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriteFileAtomicAndLatestAndPrune(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		path := filepath.Join(dir, filepath.Base(strings.Repeat("0", 3))+string(rune('a'+i))+FileExt)
		n, err := WriteFileAtomic(path, func(w io.Writer) error {
			cw := NewWriter(w, KindSampler)
			cw.Uvarint(uint64(i))
			return cw.Finish()
		})
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Fatalf("wrote %d bytes", n)
		}
	}
	latest, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(latest, "e"+FileExt) {
		t.Fatalf("latest = %s", latest)
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	names, err := files(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "000d"+FileExt || names[1] != "000e"+FileExt {
		t.Fatalf("after prune: %v", names)
	}
	// ResolvePath: dir resolves to latest, file resolves to itself.
	p, err := ResolvePath(dir)
	if err != nil || p != latest {
		t.Fatalf("ResolvePath(dir) = %s, %v", p, err)
	}
	p, err = ResolvePath(latest)
	if err != nil || p != latest {
		t.Fatalf("ResolvePath(file) = %s, %v", p, err)
	}
	if _, err := ResolvePath(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("ResolvePath of missing path succeeded")
	}
}

func TestWriteFileAtomicFailureLeavesNoTarget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x"+FileExt)
	if _, err := WriteFileAtomic(path, func(io.Writer) error {
		return errors.New("boom")
	}); err == nil {
		t.Fatal("write error not propagated")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("target exists after failed write: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("temp files left behind: %v", entries)
	}
	if _, err := Latest(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Latest on empty dir: %v", err)
	}
}

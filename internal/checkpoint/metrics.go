package checkpoint

import (
	"time"

	"gps/internal/obs"
)

// Package-level durability telemetry. Checkpoint files are a per-process
// concern (one data directory per process), so the instruments are package
// globals: WriteFileAtomic records into them unconditionally — it runs off
// the ingest path, a handful of times per minute at most — and
// RegisterMetrics attaches them to whichever registry the process scrapes.
var (
	fsyncNS      = obs.NewHistogram(obs.Latency())
	fileBytes    = obs.NewHistogram(obs.Sizes(34))
	filesWritten = obs.NewCounter()
)

// RegisterMetrics attaches the checkpoint-file telemetry to reg under the
// gps_checkpoint_* namespace.
func RegisterMetrics(reg *obs.Registry) {
	reg.RegisterHistogram("gps_checkpoint_fsync_seconds",
		"fsync of the checkpoint temporary before its rename (per WriteFileAtomic).", fsyncNS)
	reg.RegisterHistogram("gps_checkpoint_file_bytes",
		"Bytes per checkpoint file written.", fileBytes)
	reg.RegisterCounter("gps_checkpoint_files_written_total",
		"Checkpoint files durably written and renamed into place.", filesWritten)
}

// observeFsync records one data-file fsync duration.
func observeFsync(start time.Time) { fsyncNS.Observe(uint64(time.Since(start))) }

package exact

import (
	"testing"

	"gps/internal/gen"
	"gps/internal/graph"
)

// completeGraph returns K_n.
func completeGraph(n int) *graph.Static {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.NewEdge(graph.NodeID(i), graph.NodeID(j)))
		}
	}
	return graph.BuildStatic(edges)
}

// TestCliques4AndStars3Complete pins the closed forms on complete graphs:
// C(n,4) 4-cliques and n·C(n-1,3) 3-stars.
func TestCliques4AndStars3Complete(t *testing.T) {
	for _, n := range []int64{4, 5, 7, 10} {
		g := completeGraph(int(n))
		if got, want := Cliques4(g), n*(n-1)*(n-2)*(n-3)/24; got != want {
			t.Fatalf("Cliques4(K%d) = %d, want %d", n, got, want)
		}
		if got, want := Stars3(g), n*(n-1)*(n-2)*(n-3)/6; got != want {
			t.Fatalf("Stars3(K%d) = %d, want %d", n, got, want)
		}
	}
	// A triangle has no 4-clique and no 3-star.
	g := completeGraph(3)
	if Cliques4(g) != 0 || Stars3(g) != 0 {
		t.Fatal("K3 should have no 4-cliques or 3-stars")
	}
}

// TestCliques4BruteForce compares the anchored counter against a quartic
// brute force on small random graphs.
func TestCliques4BruteForce(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		edges := gen.ErdosRenyi(24, 120, seed)
		g := graph.BuildStatic(edges)
		n := g.NumNodes()
		var want int64
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if !g.HasEdge(graph.NodeID(a), graph.NodeID(b)) {
					continue
				}
				for c := b + 1; c < n; c++ {
					if !g.HasEdge(graph.NodeID(a), graph.NodeID(c)) || !g.HasEdge(graph.NodeID(b), graph.NodeID(c)) {
						continue
					}
					for d := c + 1; d < n; d++ {
						if g.HasEdge(graph.NodeID(a), graph.NodeID(d)) &&
							g.HasEdge(graph.NodeID(b), graph.NodeID(d)) &&
							g.HasEdge(graph.NodeID(c), graph.NodeID(d)) {
							want++
						}
					}
				}
			}
		}
		if got := Cliques4(g); got != want {
			t.Fatalf("seed %d: Cliques4 = %d, brute force = %d", seed, got, want)
		}
	}
}

package exact

import (
	"testing"

	"gps/internal/graph"
	"gps/internal/randx"
)

func TestStreamingMatchesStatic(t *testing.T) {
	rng := randx.New(5)
	set := graph.NewEdgeSet(3000)
	for set.Len() < 3000 {
		a := graph.NodeID(rng.Intn(300))
		b := graph.NodeID(rng.Intn(300))
		if a != b {
			set.Add(a, b)
		}
	}
	edges := set.Edges()
	sc := NewStreamingCounter()
	for i, e := range edges {
		if !sc.Add(e) {
			t.Fatalf("fresh edge %v rejected", e)
		}
		// Spot-check prefixes (full check at every step is quadratic).
		if i%500 == 499 || i == len(edges)-1 {
			g := graph.BuildStatic(edges[:i+1])
			if got, want := sc.Triangles(), Triangles(g); got != want {
				t.Fatalf("prefix %d: streaming triangles %d, static %d", i+1, got, want)
			}
			if got, want := sc.Wedges(), Wedges(g); got != want {
				t.Fatalf("prefix %d: streaming wedges %d, static %d", i+1, got, want)
			}
		}
	}
	if sc.Edges() != len(edges) {
		t.Fatalf("Edges = %d, want %d", sc.Edges(), len(edges))
	}
}

func TestStreamingDuplicatesIgnored(t *testing.T) {
	sc := NewStreamingCounter()
	e := graph.NewEdge(1, 2)
	if !sc.Add(e) {
		t.Fatal("first Add rejected")
	}
	if sc.Add(e) {
		t.Fatal("duplicate Add accepted")
	}
	if sc.Edges() != 1 || sc.Triangles() != 0 || sc.Wedges() != 0 {
		t.Fatalf("state after duplicate: %d edges %d tri %d wedges",
			sc.Edges(), sc.Triangles(), sc.Wedges())
	}
}

func TestStreamingClustering(t *testing.T) {
	sc := NewStreamingCounter()
	if sc.GlobalClustering() != 0 {
		t.Fatal("empty clustering != 0")
	}
	sc.Add(graph.NewEdge(0, 1))
	sc.Add(graph.NewEdge(1, 2))
	sc.Add(graph.NewEdge(0, 2))
	// Triangle: 1 triangle, 3 wedges → clustering 1.
	if cc := sc.GlobalClustering(); cc != 1 {
		t.Fatalf("triangle clustering = %v", cc)
	}
}

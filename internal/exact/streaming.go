package exact

import "gps/internal/graph"

// StreamingCounter maintains exact triangle and wedge counts of the graph
// seen so far, updated per arriving edge. The time-series experiments
// (Table 3, Figure 3) need ground truth N_t(△), N_t(Λ) at many checkpoints
// along the stream; recounting each prefix would cost O(checkpoints·m^{3/2}),
// whereas incremental counting pays the common-neighbor intersection once
// per edge — the same total work as a single exact pass.
//
// The zero value is not usable; construct with NewStreamingCounter.
type StreamingCounter struct {
	adj       *graph.Adjacency
	triangles int64
	wedges    int64
}

// NewStreamingCounter returns an empty counter.
func NewStreamingCounter() *StreamingCounter {
	return &StreamingCounter{adj: graph.NewAdjacency()}
}

// Add observes one edge arrival and reports whether it was new (duplicates
// are ignored, keeping the counter aligned with the simplified-stream
// model).
func (c *StreamingCounter) Add(e graph.Edge) bool {
	if c.adj.Has(e) {
		return false
	}
	// New triangles: one per common neighbor of the endpoints.
	c.triangles += int64(c.adj.CountCommonNeighbors(e.U, e.V))
	// New wedges: the edge forms one wedge with every edge already
	// incident to either endpoint.
	c.wedges += int64(c.adj.Degree(e.U) + c.adj.Degree(e.V))
	c.adj.Add(e)
	return true
}

// Remove observes one turnstile deletion and reports whether the edge was
// present (deletions of absent edges apply vacuously, mirroring the
// sampler's delUnsampled path). It is the exact inverse of Add: the edge
// leaves the graph first, and the motifs it participated in — one triangle
// per remaining common neighbor, one wedge per remaining incident edge —
// are subtracted against the post-removal topology.
func (c *StreamingCounter) Remove(e graph.Edge) bool {
	if !c.adj.Has(e) {
		return false
	}
	c.adj.Remove(e)
	c.triangles -= int64(c.adj.CountCommonNeighbors(e.U, e.V))
	c.wedges -= int64(c.adj.Degree(e.U) + c.adj.Degree(e.V))
	return true
}

// Process dispatches one turnstile record: Add for inserts, Remove for
// deletion records. It is the ground-truth mirror of Sampler.Process over a
// turnstile stream.
func (c *StreamingCounter) Process(e graph.Edge) bool {
	if e.Del {
		return c.Remove(e.Insert())
	}
	return c.Add(e)
}

// Triangles returns the exact triangle count of the edges seen so far.
func (c *StreamingCounter) Triangles() int64 { return c.triangles }

// Wedges returns the exact wedge count of the edges seen so far.
func (c *StreamingCounter) Wedges() int64 { return c.wedges }

// GlobalClustering returns 3·triangles/wedges, or 0 without wedges.
func (c *StreamingCounter) GlobalClustering() float64 {
	if c.wedges == 0 {
		return 0
	}
	return 3 * float64(c.triangles) / float64(c.wedges)
}

// Edges returns the number of distinct edges seen.
func (c *StreamingCounter) Edges() int { return c.adj.NumEdges() }

package exact

import (
	"testing"

	"gps/internal/graph"
	"gps/internal/randx"
)

// naiveTriangles counts triangles by per-edge common-neighbor enumeration
// over a hash adjacency; each triangle is seen three times.
func naiveTriangles(edges []graph.Edge) int64 {
	adj := graph.NewAdjacency()
	for _, e := range edges {
		adj.Add(e)
	}
	var three int64
	for _, e := range edges {
		three += int64(adj.CountCommonNeighbors(e.U, e.V))
	}
	return three / 3
}

func clique(n int) []graph.Edge {
	var es []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			es = append(es, graph.NewEdge(graph.NodeID(i), graph.NodeID(j)))
		}
	}
	return es
}

func choose3(n int64) int64 { return n * (n - 1) * (n - 2) / 6 }
func choose2(n int64) int64 { return n * (n - 1) / 2 }

func TestClique(t *testing.T) {
	for _, n := range []int64{3, 4, 5, 10, 20} {
		g := graph.BuildStatic(clique(int(n)))
		if got := Triangles(g); got != choose3(n) {
			t.Fatalf("K%d triangles = %d, want %d", n, got, choose3(n))
		}
		wantW := n * choose2(n-1)
		if got := Wedges(g); got != wantW {
			t.Fatalf("K%d wedges = %d, want %d", n, got, wantW)
		}
		c := Count(g)
		if cc := c.GlobalClustering(); cc < 0.999 || cc > 1.001 {
			t.Fatalf("K%d clustering = %v, want 1", n, cc)
		}
	}
}

func TestStar(t *testing.T) {
	const leaves = 9
	var es []graph.Edge
	for i := 1; i <= leaves; i++ {
		es = append(es, graph.NewEdge(0, graph.NodeID(i)))
	}
	g := graph.BuildStatic(es)
	if got := Triangles(g); got != 0 {
		t.Fatalf("star triangles = %d", got)
	}
	if got := Wedges(g); got != choose2(leaves) {
		t.Fatalf("star wedges = %d, want %d", got, choose2(leaves))
	}
	if cc := Count(g).GlobalClustering(); cc != 0 {
		t.Fatalf("star clustering = %v", cc)
	}
}

func TestCycle(t *testing.T) {
	const n = 12
	var es []graph.Edge
	for i := 0; i < n; i++ {
		es = append(es, graph.NewEdge(graph.NodeID(i), graph.NodeID((i+1)%n)))
	}
	g := graph.BuildStatic(es)
	if got := Triangles(g); got != 0 {
		t.Fatalf("C%d triangles = %d", n, got)
	}
	if got := Wedges(g); got != n {
		t.Fatalf("C%d wedges = %d, want %d", n, got, n)
	}
}

func TestTriangleWithPendant(t *testing.T) {
	es := []graph.Edge{
		graph.NewEdge(0, 1), graph.NewEdge(1, 2), graph.NewEdge(0, 2),
		graph.NewEdge(2, 3),
	}
	g := graph.BuildStatic(es)
	if got := Triangles(g); got != 1 {
		t.Fatalf("triangles = %d, want 1", got)
	}
	// Wedges: node2 has degree 3 → 3 wedges; nodes 0,1 degree 2 → 1 each.
	if got := Wedges(g); got != 5 {
		t.Fatalf("wedges = %d, want 5", got)
	}
}

func TestCompleteBipartite(t *testing.T) {
	const a, b = 4, 6
	var es []graph.Edge
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			es = append(es, graph.NewEdge(graph.NodeID(i), graph.NodeID(a+j)))
		}
	}
	g := graph.BuildStatic(es)
	if got := Triangles(g); got != 0 {
		t.Fatalf("K%d,%d triangles = %d", a, b, got)
	}
	want := int64(a)*choose2(b) + int64(b)*choose2(a)
	if got := Wedges(g); got != want {
		t.Fatalf("K%d,%d wedges = %d, want %d", a, b, got, want)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	if got := Triangles(graph.BuildStatic(nil)); got != 0 {
		t.Fatalf("empty triangles = %d", got)
	}
	g := graph.BuildStatic([]graph.Edge{graph.NewEdge(0, 1)})
	if Triangles(g) != 0 || Wedges(g) != 0 {
		t.Fatal("single edge should have no triangles or wedges")
	}
}

func TestAgainstNaiveRandom(t *testing.T) {
	rng := randx.New(99)
	for trial := 0; trial < 10; trial++ {
		set := graph.NewEdgeSet(400)
		const n = 60
		for i := 0; i < 400; i++ {
			a := graph.NodeID(rng.Intn(n))
			b := graph.NodeID(rng.Intn(n))
			if a != b {
				set.Add(a, b)
			}
		}
		edges := set.Edges()
		g := graph.BuildStatic(edges)
		want := naiveTriangles(edges)
		if got := Triangles(g); got != want {
			t.Fatalf("trial %d: forward=%d naive=%d", trial, got, want)
		}
	}
}

func TestTrianglesAt(t *testing.T) {
	es := clique(5)
	g := graph.BuildStatic(es)
	for _, e := range es {
		if got := TrianglesAt(g, e.U, e.V); got != 3 {
			t.Fatalf("K5 TrianglesAt(%v) = %d, want 3", e, got)
		}
	}
}

func TestParallelConsistency(t *testing.T) {
	// Larger random graph: result must be invariant across repeated runs
	// (goroutine scheduling must not affect the sum).
	rng := randx.New(7)
	set := graph.NewEdgeSet(20000)
	for set.Len() < 20000 {
		a := graph.NodeID(rng.Intn(2000))
		b := graph.NodeID(rng.Intn(2000))
		if a != b {
			set.Add(a, b)
		}
	}
	g := graph.BuildStatic(set.Edges())
	first := Triangles(g)
	for i := 0; i < 3; i++ {
		if got := Triangles(g); got != first {
			t.Fatalf("run %d: %d != %d", i, got, first)
		}
	}
	if want := naiveTriangles(set.Edges()); first != want {
		t.Fatalf("parallel=%d naive=%d", first, want)
	}
}

func BenchmarkTriangles20K(b *testing.B) {
	rng := randx.New(7)
	set := graph.NewEdgeSet(20000)
	for set.Len() < 20000 {
		a := graph.NodeID(rng.Intn(2000))
		c := graph.NodeID(rng.Intn(2000))
		if a != c {
			set.Add(a, c)
		}
	}
	g := graph.BuildStatic(set.Edges())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Triangles(g)
	}
}

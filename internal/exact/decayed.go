package exact

import (
	"math"
	"sort"

	"gps/internal/graph"
)

// Decayed and sliding-window ground truth for temporal streams. A motif's
// age is the age of its *oldest* edge — the motif is only as recent as its
// stalest side — so at horizon T with decay rate λ it counts
// exp(-λ(T - min_i t_i)), and it is inside a sliding window of width W iff
// every member edge is (equivalently, iff its oldest edge is). These
// brute-force counters are the targets the decay accuracy harness pins the
// decayed GPS estimators against.

// DecayedCounts holds exact forward-decayed motif totals at a horizon.
type DecayedCounts struct {
	Edges     float64
	Triangles float64
	Wedges    float64
	Horizon   uint64
}

// Decayed computes the exact decayed edge, triangle and wedge counts of a
// timestamped edge set at the given horizon, under decay rate
// lambda = ln2/halfLife. Untimed edges (TS 0) are treated as age-0 (decay
// factor 1); streams mixing timed and untimed edges should resolve times
// upstream. The input must be deduplicated.
func Decayed(edges []graph.Edge, lambda float64, horizon uint64) DecayedCounts {
	g := graph.BuildStatic(edges)
	decayOf := make(map[uint64]float64, len(edges))
	out := DecayedCounts{Horizon: horizon}
	for _, e := range edges {
		d := decayFactor(lambda, horizon, e.TS)
		decayOf[e.Key()] = d
		out.Edges += d
	}

	// Triangles: for each edge (u,v) with u<v, merge-intersect the
	// neighborhoods and count each triangle at its lexicographically
	// smallest rim pass (w > v keeps each triangle counted once).
	for u := 0; u < g.NumNodes(); u++ {
		nu := g.Neighbors(graph.NodeID(u))
		for _, v := range nu {
			if v <= graph.NodeID(u) {
				continue
			}
			duv := lookupDecay(decayOf, graph.NodeID(u), v)
			nv := g.Neighbors(v)
			i, j := 0, 0
			for i < len(nu) && j < len(nv) {
				switch {
				case nu[i] < nv[j]:
					i++
				case nu[i] > nv[j]:
					j++
				default:
					if w := nu[i]; w > v {
						d := minf(duv, minf(
							lookupDecay(decayOf, graph.NodeID(u), w),
							lookupDecay(decayOf, v, w)))
						out.Triangles += d
					}
					i++
					j++
				}
			}
		}
	}

	// Wedges: per center node, sort incident edge decays descending; the
	// j-th largest is the min of exactly j-1 pairs with earlier members, so
	// Σ_{i<j} min(d_i,d_j) = Σ_j (j-1)·d_(j).
	ds := make([]float64, 0, 64)
	for v := 0; v < g.NumNodes(); v++ {
		nbrs := g.Neighbors(graph.NodeID(v))
		if len(nbrs) < 2 {
			continue
		}
		ds = ds[:0]
		for _, u := range nbrs {
			ds = append(ds, lookupDecay(decayOf, graph.NodeID(v), u))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(ds)))
		for j := 1; j < len(ds); j++ {
			out.Wedges += float64(j) * ds[j]
		}
	}
	return out
}

// Windowed computes the exact edge, triangle and wedge counts of the
// sub-stream whose event times fall in (horizon-window, horizon] — the
// sharp-cutoff analogue of Decayed, which the decay experiment reports
// alongside the exponentially decayed totals.
func Windowed(edges []graph.Edge, window, horizon uint64) (edgeCount int, triangles, wedges int64) {
	var recent []graph.Edge
	for _, e := range edges {
		if e.TS > horizon {
			continue
		}
		if horizon-e.TS < window || e.TS == 0 {
			recent = append(recent, e)
		}
	}
	g := graph.BuildStatic(recent)
	return len(recent), Triangles(g), Wedges(g)
}

func decayFactor(lambda float64, horizon, ts uint64) float64 {
	if ts == 0 || ts >= horizon {
		return 1
	}
	return math.Exp(-lambda * float64(horizon-ts))
}

func lookupDecay(m map[uint64]float64, u, v graph.NodeID) float64 {
	if u > v {
		u, v = v, u
	}
	return m[graph.Edge{U: u, V: v}.Key()]
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Package exact computes exact triangle counts, wedge counts and the global
// clustering coefficient of static graphs. Every experiment in the paper
// reports estimates against ground truth ("ACTUAL" in Table 1); this package
// supplies that ground truth for the synthetic stand-in datasets.
//
// Triangles are counted with the degree-ordered forward algorithm
// (Chiba–Nishizeki / Latapy): orient every edge from lower to higher rank,
// where rank orders nodes by (degree, id); then each triangle is counted
// exactly once as an intersection of forward neighbor lists. Running time is
// O(m^{3/2}) worst case and far lower on the skewed graphs we generate.
// The node loop is parallelized across CPUs.
package exact

import (
	"runtime"
	"sort"
	"sync"

	"gps/internal/graph"
)

// Counts aggregates the exact statistics of a graph.
type Counts struct {
	Nodes     int
	Edges     int64
	Triangles int64
	Wedges    int64
}

// GlobalClustering returns the global clustering coefficient
// α = 3·N(△)/N(Λ), or 0 when the graph has no wedges.
func (c Counts) GlobalClustering() float64 {
	if c.Wedges == 0 {
		return 0
	}
	return 3 * float64(c.Triangles) / float64(c.Wedges)
}

// Count returns the exact node, edge, triangle and wedge counts of g.
func Count(g *graph.Static) Counts {
	return Counts{
		Nodes:     g.NumNodes(),
		Edges:     g.NumEdges(),
		Triangles: Triangles(g),
		Wedges:    Wedges(g),
	}
}

// Wedges returns the exact number of wedges (paths of length 2),
// Σ_v deg(v)·(deg(v)-1)/2.
func Wedges(g *graph.Static) int64 {
	var total int64
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(graph.NodeID(v))
		total += d * (d - 1) / 2
	}
	return total
}

// Triangles returns the exact number of triangles in g.
func Triangles(g *graph.Static) int64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	rank := degreeRank(g)

	// Forward adjacency: for each node, the neighbors of higher rank,
	// sorted by rank so intersections can merge.
	fwdOff := make([]int32, n+1)
	for v := 0; v < n; v++ {
		cnt := int32(0)
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if rank[u] > rank[v] {
				cnt++
			}
		}
		fwdOff[v+1] = fwdOff[v] + cnt
	}
	fwd := make([]int32, fwdOff[n])
	for v := 0; v < n; v++ {
		k := fwdOff[v]
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if rank[u] > rank[v] {
				fwd[k] = rank[u]
				k++
			}
		}
		seg := fwd[fwdOff[v]:fwdOff[v+1]]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	}
	// byRank[r] = node with rank r; forward lists store ranks, so the
	// triangle merge below works purely in rank space.
	byRank := make([]int32, n)
	for v := 0; v < n; v++ {
		byRank[rank[v]] = int32(v)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	totals := make([]int64, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var local int64
			for v := lo; v < hi; v++ {
				fv := fwd[fwdOff[v]:fwdOff[v+1]]
				for _, ur := range fv {
					u := byRank[ur]
					local += intersectSorted(fv, fwd[fwdOff[u]:fwdOff[u+1]])
				}
			}
			totals[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, t := range totals {
		total += t
	}
	return total
}

// Stars3 returns the exact number of 3-stars (claws), Σ_v C(deg(v), 3) —
// the ground truth for core.EstimateStars3Post.
func Stars3(g *graph.Static) int64 {
	var total int64
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(graph.NodeID(v))
		total += d * (d - 1) * (d - 2) / 6
	}
	return total
}

// Cliques4 returns the exact number of 4-cliques — the ground truth for
// core.EstimateCliques4Post. Each clique is counted once, anchored at the
// edge joining its two smallest vertices (the same anchoring the estimator
// uses): for every edge (u,v) with u < v, the common neighbors greater
// than v are enumerated and each adjacent pair among them closes one
// clique. The node loop is parallelized like Triangles; cost is
// Σ_{(u,v)} C(c(u,v), 2) adjacency probes, cheap at the synthetic-dataset
// scale the accuracy harness runs at.
func Cliques4(g *graph.Static) int64 {
	n := g.NumNodes()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	totals := make([]int64, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var local int64
			var cands []graph.NodeID
			for ui := lo; ui < hi; ui++ {
				u := graph.NodeID(ui)
				nu := g.Neighbors(u)
				for _, v := range nu {
					if v <= u {
						continue
					}
					// Common neighbors of (u,v) greater than v, by merge.
					cands = cands[:0]
					nv := g.Neighbors(v)
					i, j := 0, 0
					for i < len(nu) && j < len(nv) {
						x, y := nu[i], nv[j]
						switch {
						case x == y:
							if x > v {
								cands = append(cands, x)
							}
							i++
							j++
						case x < y:
							i++
						default:
							j++
						}
					}
					for i := 0; i < len(cands); i++ {
						for j := i + 1; j < len(cands); j++ {
							if g.HasEdge(cands[i], cands[j]) {
								local++
							}
						}
					}
				}
			}
			totals[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, t := range totals {
		total += t
	}
	return total
}

// degreeRank assigns each node a rank by ascending (degree, id). Orienting
// edges toward higher rank bounds every forward list by O(√m).
func degreeRank(g *graph.Static) []int32 {
	n := g.NumNodes()
	nodes := make([]int32, n)
	for i := range nodes {
		nodes[i] = int32(i)
	}
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := g.Degree(graph.NodeID(nodes[i])), g.Degree(graph.NodeID(nodes[j]))
		if di != dj {
			return di < dj
		}
		return nodes[i] < nodes[j]
	})
	rank := make([]int32, n)
	for r, v := range nodes {
		rank[v] = int32(r)
	}
	return rank
}

// intersectSorted returns the size of the intersection of two ascending
// int32 slices.
func intersectSorted(a, b []int32) int64 {
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// TrianglesAt returns the number of triangles containing the edge {u,v} in
// g, i.e. |Γ(u) ∩ Γ(v)|. It is used by tests and by per-edge diagnostics.
func TrianglesAt(g *graph.Static, u, v graph.NodeID) int64 {
	a, b := g.Neighbors(u), g.Neighbors(v)
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

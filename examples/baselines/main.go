// Baselines: a miniature of the paper's Table 2. GPS post-stream estimation
// is compared against NSAMP (neighborhood sampling), TRIEST (uniform
// reservoir) and MASCOT (Bernoulli edge sampling) on a citation-like graph,
// every method holding roughly the same number of edges, reporting triangle
// estimates, relative errors, and per-edge update cost.
package main

import (
	"fmt"
	"log"
	"time"

	"gps"
	"gps/internal/baselines"
	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/stats"
	"gps/internal/stream"
)

func main() {
	edges := stream.Collect(stream.Permute(gen.BarabasiAlbert(30000, 5, 13), 14))
	truth := exact.Count(graph.BuildStatic(edges))
	const budget = 8000
	fmt.Printf("graph: %d edges, %d triangles; every method stores ≈%d edges\n\n",
		len(edges), truth.Triangles, budget)

	type method struct {
		name     string
		process  func(graph.Edge)
		estimate func() float64
	}
	var methods []method

	nsamp, err := baselines.NewNSamp(budget/2, 1)
	if err != nil {
		log.Fatal(err)
	}
	methods = append(methods, method{"NSAMP", nsamp.Process, nsamp.Triangles})

	triest, err := baselines.NewTriest(budget, 2)
	if err != nil {
		log.Fatal(err)
	}
	methods = append(methods, method{"TRIEST", triest.Process, triest.Triangles})

	mascot, err := baselines.NewMascot(float64(budget)/float64(len(edges)), 3)
	if err != nil {
		log.Fatal(err)
	}
	methods = append(methods, method{"MASCOT", mascot.Process, mascot.Triangles})

	sampler, err := gps.NewSampler(gps.Config{Capacity: budget, Weight: gps.TriangleWeight, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	methods = append(methods, method{
		"GPS POST",
		func(e graph.Edge) { sampler.Process(e) },
		func() float64 { return gps.EstimatePost(sampler).Triangles },
	})

	fmt.Println("method     estimate      ARE     µs/edge")
	for _, m := range methods {
		start := time.Now()
		for _, e := range edges {
			m.process(e)
		}
		perEdge := float64(time.Since(start).Nanoseconds()) / float64(len(edges)) / 1e3
		est := m.estimate()
		fmt.Printf("%-9s %10.0f   %.4f     %.2f\n",
			m.name, est, stats.ARE(est, float64(truth.Triangles)), perEdge)
	}
}

// Quickstart: sample a clustered synthetic graph stream with Graph Priority
// Sampling and estimate its triangle count, wedge count and global
// clustering coefficient — both in-stream (while sampling) and post-stream
// (from the final sample) — then compare against the exact values.
package main

import (
	"fmt"
	"log"

	"gps"
	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
)

func main() {
	// A 20K-node power-law graph with strong clustering, ~100K edges:
	// the kind of social graph the paper's motivation targets.
	edges := gen.HolmeKim(20000, 5, 0.6, 42)
	fmt.Printf("graph: %d edges\n", len(edges))

	// Sample 10% of the stream with the paper's triangle weight, taking
	// in-stream snapshots as the stream flows.
	in, err := gps.NewInStream(gps.Config{
		Capacity: len(edges) / 10,
		Weight:   gps.TriangleWeight,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	gps.Drive(gps.Permute(edges, 2), func(e gps.Edge) { in.Process(e) })

	report := func(name string, est gps.Estimates) {
		tri := est.TriangleInterval()
		fmt.Printf("%-12s triangles=%.0f (95%% CI [%.0f, %.0f])  wedges=%.0f  clustering=%.4f\n",
			name, est.Triangles, tri.Lower, tri.Upper, est.Wedges, est.GlobalClustering())
	}
	report("in-stream", in.Estimates())
	report("post-stream", gps.EstimatePost(in.Sampler()))

	truth := exact.Count(graph.BuildStatic(edges))
	fmt.Printf("%-12s triangles=%d  wedges=%d  clustering=%.4f\n",
		"exact", truth.Triangles, truth.Wedges, truth.GlobalClustering())
}

// Serve: a runnable client of the live sampling service. It boots a
// gps-serve instance in-process on a loopback listener, streams a
// heavy-tailed R-MAT graph into it over HTTP in binary frames, and — while
// ingestion is still running — queries triangle estimates from
// staleness-bounded snapshots, exactly as an external client would with
// curl. At the end it forces a fresh snapshot and compares against the
// exact count.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"gps/internal/core"
	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/serve"
	"gps/internal/stream"
)

func main() {
	edges := stream.Collect(stream.Permute(gen.RMAT(14, 8, 0.57, 0.19, 0.19, 7), 8))
	const sample = 8000

	srv, err := serve.NewServer(serve.Config{
		Capacity:     sample,
		Weight:       core.TriangleWeight,
		WeightName:   "triangle",
		Seed:         3,
		Shards:       4,
		MaxStaleness: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fmt.Printf("service on %s — stream of %d edges, reservoir %d (%.2f%%)\n\n",
		ts.URL, len(edges), sample, 100*float64(sample)/float64(len(edges)))
	fmt.Println("  ingested     triangles(exact)   estimate(served)   snapshot-age")

	counter := exact.NewStreamingCounter()
	const batch = 4096
	for lo := 0; lo < len(edges); lo += batch {
		hi := min(lo+batch, len(edges))
		for _, e := range edges[lo:hi] {
			counter.Add(e)
		}
		post(ts.URL+"/v1/ingest", stream.BinaryContentType, encodeBinary(edges[lo:hi]))
		// Query while ingestion is in flight: the served estimate may lag
		// by up to the staleness bound — that lag is the price of never
		// stalling ingestion for a query.
		if (lo/batch)%8 == 7 || hi == len(edges) {
			post(ts.URL+"/v1/flush", "", nil)
			est := getEstimate(ts.URL + "/v1/estimate")
			fmt.Printf("%10d  %17d  %17.0f  %11.1fms\n",
				hi, counter.Triangles(), est.Triangles, est.SnapshotAgeMS)
		}
	}

	fresh := getEstimate(ts.URL + "/v1/estimate?max_stale=0s")
	fmt.Printf("\nfinal fresh snapshot: %.0f triangles estimated vs %d exact (%.2f%% error), %d edges sampled of %d\n",
		fresh.Triangles, counter.Triangles(),
		100*abs(fresh.Triangles-float64(counter.Triangles()))/float64(counter.Triangles()),
		fresh.SampledEdges, fresh.Arrivals)

	// The same service answers arbitrary subgraph queries: the
	// Horvitz-Thompson estimate of one specific edge's presence.
	e := edges[0]
	resp, err := http.Post(ts.URL+"/v1/estimate/subgraph", "application/json",
		bytes.NewBufferString(fmt.Sprintf(`{"edges": [[%d,%d]]}`, e.U, e.V)))
	if err != nil {
		log.Fatal(err)
	}
	var sub struct {
		Estimate float64 `json:"estimate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("subgraph query for edge %v: HT estimate %.2f (0 = not sampled, ≥1 = sampled at prob 1/est)\n",
		e, sub.Estimate)
}

type estimateResponse struct {
	Triangles     float64 `json:"triangles"`
	SampledEdges  int     `json:"sampled_edges"`
	Arrivals      uint64  `json:"arrivals"`
	SnapshotAgeMS float64 `json:"snapshot_age_ms"`
}

func encodeBinary(edges []graph.Edge) *bytes.Buffer {
	var buf bytes.Buffer
	if err := stream.WriteBinary(&buf, edges); err != nil {
		log.Fatal(err)
	}
	return &buf
}

func post(url, contentType string, body io.Reader) {
	resp, err := http.Post(url, contentType, body)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode >= 400 {
		log.Fatalf("%s: HTTP %d", url, resp.StatusCode)
	}
}

func getEstimate(url string) estimateResponse {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var est estimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		log.Fatal(err)
	}
	return est
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Socialstream: real-time tracking of an evolving social-media interaction
// stream (the Figure 3 scenario). A heavy-tailed R-MAT stream plays the role
// of a growing social network; GPS with in-stream estimation maintains
// running triangle-count and clustering estimates with 95% confidence bands
// while storing only a small fraction of the edges, and the printout
// compares each checkpoint against the exact counts of the prefix.
package main

import (
	"fmt"
	"log"

	"gps"
	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/stream"
)

func main() {
	edges := stream.Collect(stream.Permute(gen.RMAT(15, 8, 0.57, 0.19, 0.19, 7), 8))
	const sample = 8000
	fmt.Printf("stream of %d edges; reservoir %d edges (%.2f%%)\n\n",
		len(edges), sample, 100*float64(sample)/float64(len(edges)))

	in, err := gps.NewInStream(gps.Config{Capacity: sample, Weight: gps.TriangleWeight, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	counter := exact.NewStreamingCounter()

	fmt.Println("        t     triangles      estimate   [95% band]              clustering   est")
	every := len(edges) / 15
	t := 0
	for _, e := range edges {
		in.Process(e)
		counter.Add(e)
		t++
		if t%every == 0 || t == len(edges) {
			est := in.Estimates()
			iv := est.TriangleInterval()
			fmt.Printf("%9d  %12d  %12.0f   [%.0f, %.0f]   %12.5f  %8.5f\n",
				t, counter.Triangles(), est.Triangles, iv.Lower, iv.Upper,
				counter.GlobalClustering(), est.GlobalClustering())
		}
	}
}

// Socialstream: real-time tracking of an evolving social-media interaction
// stream (the Figure 3 scenario). A heavy-tailed R-MAT stream plays the role
// of a growing social network; GPS with in-stream estimation maintains
// running triangle-count and clustering estimates with 95% confidence bands
// while storing only a small fraction of the edges, and the printout
// compares each checkpoint against the exact counts of the prefix.
//
// The second half is the *temporal* view of the same stream: activity
// streams care about recent structure, so a forward-decay sampler
// (half-life = 1/5 of the stream) re-runs the stream with event time =
// position and its decayed triangle/wedge estimates are compared against
// the brute-force exact decayed counts.
package main

import (
	"fmt"
	"log"
	"math"

	"gps"
	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/stream"
)

func main() {
	edges := stream.Collect(stream.Permute(gen.RMAT(15, 8, 0.57, 0.19, 0.19, 7), 8))
	const sample = 8000
	fmt.Printf("stream of %d edges; reservoir %d edges (%.2f%%)\n\n",
		len(edges), sample, 100*float64(sample)/float64(len(edges)))

	in, err := gps.NewInStream(gps.Config{Capacity: sample, Weight: gps.TriangleWeight, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	counter := exact.NewStreamingCounter()

	fmt.Println("        t     triangles      estimate   [95% band]              clustering   est")
	every := len(edges) / 15
	t := 0
	for _, e := range edges {
		in.Process(e)
		counter.Add(e)
		t++
		if t%every == 0 || t == len(edges) {
			est := in.Estimates()
			iv := est.TriangleInterval()
			fmt.Printf("%9d  %12d  %12.0f   [%.0f, %.0f]   %12.5f  %8.5f\n",
				t, counter.Triangles(), est.Triangles, iv.Lower, iv.Upper,
				counter.GlobalClustering(), est.GlobalClustering())
		}
	}

	// Temporal view: the same stream as an activity log (event time = stream
	// position) under forward decay. Old interactions fade with a half-life
	// of one fifth of the stream; estimates target the decayed counts.
	halfLife := float64(len(edges)) / 5
	timed := make([]gps.Edge, len(edges))
	for i, e := range edges {
		timed[i] = e.At(uint64(i + 1))
	}
	dec, err := gps.NewSampler(gps.Config{
		Capacity: sample,
		Weight:   gps.TriangleWeight,
		Seed:     3,
		Decay:    gps.Decay{HalfLife: halfLife},
	})
	if err != nil {
		log.Fatal(err)
	}
	dec.ProcessBatch(timed)
	dEst := gps.EstimatePost(dec)
	truth := exact.Decayed(timed, math.Ln2/halfLife, dEst.DecayHorizon)
	fmt.Printf("\nforward decay, half-life %.0f events (horizon %d):\n", halfLife, dEst.DecayHorizon)
	fmt.Printf("  decayed edges:     exact %12.1f   in-sample estimate %12.1f\n", truth.Edges, dEst.DecayedEdges)
	fmt.Printf("  decayed triangles: exact %12.1f   estimate %12.1f  (%.1f%% err)\n",
		truth.Triangles, dEst.Triangles, 100*math.Abs(dEst.Triangles-truth.Triangles)/truth.Triangles)
	fmt.Printf("  decayed wedges:    exact %12.1f   estimate %12.1f  (%.1f%% err)\n",
		truth.Wedges, dEst.Wedges, 100*math.Abs(dEst.Wedges-truth.Wedges)/truth.Wedges)
}

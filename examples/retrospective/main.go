// Retrospective: GPS as a reference sample for after-the-fact graph queries
// (the paper's post-stream estimation use case, §1 and §5).
//
// One pass collects a weighted sample of a web-like graph. Afterwards the
// sample answers queries the stream never anticipated:
//
//  1. global triangle/wedge/clustering estimates (Algorithm 2);
//  2. a subpopulation query — how many edges connect two "hub" nodes —
//     via the Horvitz-Thompson subset-sum over sampled edges;
//  3. motif queries over explicit edge sets via SubgraphEstimate, here the
//     count of 4-cliques in the sampled region with per-motif variance.
package main

import (
	"fmt"
	"log"

	"gps"
	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
)

func main() {
	edges := gen.HolmeKim(15000, 6, 0.7, 11)
	g := graph.BuildStatic(edges)

	// A quarter of the stream: retrospective motif queries multiply six
	// edge estimators per 4-clique, so they want a denser reference
	// sample than the global triangle counts do.
	s, err := gps.NewSampler(gps.Config{Capacity: len(edges) / 4, Weight: gps.TriangleWeight, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	gps.Drive(gps.Permute(edges, 6), func(e gps.Edge) { s.Process(e) })
	fmt.Printf("reference sample: %d of %d edges (threshold %.3g)\n\n",
		s.Reservoir().Len(), len(edges), s.Threshold())

	// Query 1: global graphlet statistics.
	est := gps.EstimatePost(s)
	truth := exact.Count(g)
	fmt.Printf("triangles: estimate %.0f vs exact %d\n", est.Triangles, truth.Triangles)
	fmt.Printf("wedges:    estimate %.0f vs exact %d\n", est.Wedges, truth.Wedges)
	fmt.Printf("clustering: estimate %.4f vs exact %.4f\n\n", est.GlobalClustering(), truth.GlobalClustering())

	// Query 2: a subpopulation sum decided after sampling. "Hub" nodes
	// stand in for an attribute (e.g. verified accounts): estimate the
	// number of hub-hub edges as Σ 1/q(e) over sampled edges in the class.
	const hubDegree = 60
	isHub := func(v gps.NodeID) bool { return g.Degree(v) >= hubDegree }
	estimate, actual := 0.0, 0
	for _, e := range edges {
		if isHub(e.U) && isHub(e.V) {
			actual++
		}
	}
	s.Reservoir().ForEachEdge(func(e gps.Edge) bool {
		if isHub(e.U) && isHub(e.V) {
			estimate += s.SubgraphEstimate(e) // 1/q(e)
		}
		return true
	})
	fmt.Printf("hub-hub edges (deg ≥ %d): estimate %.0f vs exact %d\n\n", hubDegree, estimate, actual)

	// Query 3: motifs beyond triangles, via the library's clique and star
	// estimators (the paper's Theorem 2 machinery makes both unbiased).
	fmt.Printf("4-cliques: HT estimate %.0f (exact %d)\n",
		gps.EstimateCliques4Post(s), exactFourCliques(g))
	exactStars := int64(0)
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(gps.NodeID(v))
		exactStars += d * (d - 1) * (d - 2) / 6
	}
	fmt.Printf("3-stars:   HT estimate %.0f (exact %d)\n",
		gps.EstimateStars3Post(s), exactStars)
}

// exactFourCliques counts 4-cliques by enumerating triangles and testing
// extensions — affordable at this graph size.
func exactFourCliques(g *graph.Static) int {
	count := 0
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		nv := g.Neighbors(graph.NodeID(v))
		for i := 0; i < len(nv); i++ {
			if nv[i] <= graph.NodeID(v) {
				continue
			}
			for j := i + 1; j < len(nv); j++ {
				if nv[j] <= graph.NodeID(v) || !g.HasEdge(nv[i], nv[j]) {
					continue
				}
				for k := j + 1; k < len(nv); k++ {
					if g.HasEdge(nv[i], nv[k]) && g.HasEdge(nv[j], nv[k]) {
						count++
					}
				}
			}
		}
	}
	return count
}

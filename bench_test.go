package gps_test

// This file is the benchmark harness required by the reproduction: one
// benchmark per table and figure of the paper's evaluation (§6), each of
// which regenerates the corresponding rows/series against the synthetic
// stand-in datasets, plus micro-benchmarks substantiating the paper's
// "average update times of a few microseconds per edge" claim.
//
// The table/figure benchmarks print their output once (the first iteration)
// so that `go test -bench=.` reproduces the evaluation artifacts; subsequent
// iterations measure regeneration time. EXPERIMENTS.md records the
// paper-vs-measured comparison for each.

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"gps"
	"gps/internal/baselines"
	"gps/internal/core"
	"gps/internal/datasets"
	"gps/internal/experiments"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/stream"
)

// benchOpts keeps the full regeneration affordable: Small-profile datasets,
// a handful of replications, sample sizes scaled to the stand-ins the same
// way the paper's 200K/100K/80K samples relate to its graphs.
var benchOpts = experiments.Options{Trials: 3, Seed: 0xBE9C}

var printOnce sync.Map

func printFirst(b *testing.B, key, text string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", key, text)
	}
}

// BenchmarkTable1 regenerates Table 1: GPS in-stream vs post-stream
// estimates of triangles, wedges and clustering over the 11 Table-1 graphs.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchOpts, 20000, nil)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "Table 1 (m=20K, small profile)", experiments.RenderTable1(rows))
	}
}

// BenchmarkTable2 regenerates Table 2: ARE and update time for NSAMP,
// TRIEST, MASCOT and GPS post-stream at an equal edge budget.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchOpts, 10000, nil)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "Table 2 (budget=10K, small profile)", experiments.RenderTable2(rows))
	}
}

// BenchmarkTable3 regenerates Table 3: MARE and max-ARE of triangle-count
// tracking versus time for TRIEST, TRIEST-IMPR and the two GPS estimators.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchOpts, 8000, 20, nil)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "Table 3 (m=8K, 20 checkpoints)", experiments.RenderTable3(rows))
	}
}

// BenchmarkFigure1 regenerates Figure 1: the x̂/x scatter for triangles and
// wedges under in-stream estimation.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure1(benchOpts, 10000, nil)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "Figure 1 (m=10K)", experiments.RenderFigure1(pts))
	}
}

// BenchmarkFigure2 regenerates Figure 2: triangle-count convergence with
// 95% bounds as the sample size sweeps.
func BenchmarkFigure2(b *testing.B) {
	sizes := []int{2500, 5000, 10000, 20000, 40000}
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure2(benchOpts, sizes, nil)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "Figure 2 (m=2.5K..40K)", experiments.RenderFigure2(series))
	}
}

// BenchmarkFigure3 regenerates Figure 3: real-time tracking of triangle
// counts and clustering with confidence bands.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure3(benchOpts, 8000, 20, nil)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "Figure 3 (m=8K, 20 checkpoints)", experiments.RenderFigure3(series))
	}
}

// BenchmarkAblationWeights regenerates the §3.5 design-choice ablation:
// estimation error and variance per weight function.
func BenchmarkAblationWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WeightAblation(benchOpts, 8000, "socfb-Penn94")
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "Weight ablation (socfb-Penn94, m=8K)", experiments.RenderAblation(rows))
	}
}

// BenchmarkExtensions regenerates the comparisons the paper ran but omitted:
// the JHA birthday-paradox sampler and the Buriol 3-node sampler vs GPS.
func BenchmarkExtensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Extensions(benchOpts, 10000, nil)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "Extensions (budget=10K)", experiments.RenderExtensions(rows))
	}
}

// --- Micro-benchmarks: per-edge update cost (§3.2 S4, Table 2 time block) ---

var microData struct {
	once  sync.Once
	edges []graph.Edge
}

func microEdges(b *testing.B) []graph.Edge {
	microData.once.Do(func() {
		d, err := datasets.Get("socfb-Penn94")
		if err != nil {
			b.Fatal(err)
		}
		microData.edges = stream.Collect(stream.Permute(d.Edges(datasets.Small), 99))
	})
	return microData.edges
}

// benchPerEdge runs full passes of fn over the prepared stream and reports
// nanoseconds per processed edge.
func benchPerEdge(b *testing.B, makeSink func(seed uint64) func(graph.Edge)) {
	edges := microEdges(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := makeSink(uint64(i + 1))
		for _, e := range edges {
			sink(e)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(edges)), "ns/edge")
}

func BenchmarkGPSUpdateUniform(b *testing.B) {
	benchPerEdge(b, func(seed uint64) func(graph.Edge) {
		s, _ := gps.NewSampler(gps.Config{Capacity: 10000, Weight: gps.UniformWeight, Seed: seed})
		return func(e graph.Edge) { s.Process(e) }
	})
}

func BenchmarkGPSUpdateTriangle(b *testing.B) {
	benchPerEdge(b, func(seed uint64) func(graph.Edge) {
		s, _ := gps.NewSampler(gps.Config{Capacity: 10000, Weight: gps.TriangleWeight, Seed: seed})
		return func(e graph.Edge) { s.Process(e) }
	})
}

func BenchmarkGPSUpdateAdjacency(b *testing.B) {
	benchPerEdge(b, func(seed uint64) func(graph.Edge) {
		s, _ := gps.NewSampler(gps.Config{Capacity: 10000, Weight: gps.AdjacencyWeight, Seed: seed})
		return func(e graph.Edge) { s.Process(e) }
	})
}

// BenchmarkGPSInStreamUpdate measures the combined estimate+update cost of
// Algorithm 3 per edge.
func BenchmarkGPSInStreamUpdate(b *testing.B) {
	benchPerEdge(b, func(seed uint64) func(graph.Edge) {
		in, _ := gps.NewInStream(gps.Config{Capacity: 10000, Weight: gps.TriangleWeight, Seed: seed})
		return func(e graph.Edge) { in.Process(e) }
	})
}

func BenchmarkTriestUpdate(b *testing.B) {
	benchPerEdge(b, func(seed uint64) func(graph.Edge) {
		tr, _ := baselines.NewTriest(10000, seed)
		return tr.Process
	})
}

func BenchmarkTriestImprUpdate(b *testing.B) {
	benchPerEdge(b, func(seed uint64) func(graph.Edge) {
		tr, _ := baselines.NewTriestImpr(10000, seed)
		return tr.Process
	})
}

func BenchmarkMascotUpdate(b *testing.B) {
	benchPerEdge(b, func(seed uint64) func(graph.Edge) {
		ms, _ := baselines.NewMascot(0.1, seed)
		return ms.Process
	})
}

func BenchmarkNSampUpdate(b *testing.B) {
	benchPerEdge(b, func(seed uint64) func(graph.Edge) {
		ns, _ := baselines.NewNSamp(5000, seed)
		return ns.Process
	})
}

// BenchmarkGPSProcessBatch measures the batched feeding path; it must match
// per-edge Process decisions exactly (and, empirically, its cost — the
// per-edge sampling work dominates call overhead).
func BenchmarkGPSProcessBatchUniform(b *testing.B) {
	edges := microEdges(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := gps.NewSampler(gps.Config{Capacity: 10000, Weight: gps.UniformWeight, Seed: uint64(i + 1)})
		for lo := 0; lo < len(edges); lo += 8192 {
			hi := lo + 8192
			if hi > len(edges) {
				hi = len(edges)
			}
			s.ProcessBatch(edges[lo:hi])
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(edges)), "ns/edge")
}

func BenchmarkGPSProcessBatchTriangle(b *testing.B) {
	edges := microEdges(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := gps.NewSampler(gps.Config{Capacity: 10000, Weight: gps.TriangleWeight, Seed: uint64(i + 1)})
		for lo := 0; lo < len(edges); lo += 8192 {
			hi := lo + 8192
			if hi > len(edges) {
				hi = len(edges)
			}
			s.ProcessBatch(edges[lo:hi])
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(edges)), "ns/edge")
}

// --- Engine benchmarks: sequential vs sharded over a ≥1M-edge stream ---

var engineData struct {
	once  sync.Once
	edges []graph.Edge
}

// engineEdges prepares a 1M+-edge R-MAT stream (heavy-tailed, triangle-rich)
// once per benchmark binary run.
func engineEdges(b *testing.B) []graph.Edge {
	engineData.once.Do(func() {
		all := gen.RMAT(16, 16, 0.57, 0.19, 0.19, 0xE9619E)
		engineData.edges = stream.Collect(stream.Permute(all, 7))
	})
	if len(engineData.edges) < 1_000_000 {
		b.Fatalf("engine stream only %d edges", len(engineData.edges))
	}
	return engineData.edges
}

func benchEngineSequential(b *testing.B, weight gps.WeightFunc) {
	edges := engineEdges(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := gps.NewSampler(gps.Config{Capacity: 100000, Weight: weight, Seed: uint64(i + 1)})
		s.ProcessBatch(edges)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(edges)), "ns/edge")
}

func benchEngineParallel(b *testing.B, weight gps.WeightFunc, shards int) {
	edges := engineEdges(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := gps.NewParallel(gps.Config{Capacity: 100000, Weight: weight, Seed: uint64(i + 1)}, shards)
		if err != nil {
			b.Fatal(err)
		}
		p.ProcessBatch(edges)
		if _, err := p.Merge(); err != nil {
			b.Fatal(err)
		}
		p.Close()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(edges)), "ns/edge")
}

func BenchmarkEngineSequentialUniform1M(b *testing.B) { benchEngineSequential(b, gps.UniformWeight) }
func BenchmarkEngineParallel4Uniform1M(b *testing.B)  { benchEngineParallel(b, gps.UniformWeight, 4) }
func BenchmarkEngineSequentialTriangle1M(b *testing.B) {
	benchEngineSequential(b, gps.TriangleWeight)
}
func BenchmarkEngineParallel4Triangle1M(b *testing.B) {
	benchEngineParallel(b, gps.TriangleWeight, 4)
}

// BenchmarkEstimatePost measures one full Algorithm 2 scan over a 10K-edge
// reservoir (the retrospective-query cost) on the slot-indexed fast path.
func BenchmarkEstimatePost(b *testing.B) {
	edges := microEdges(b)
	s, _ := gps.NewSampler(gps.Config{Capacity: 10000, Weight: gps.TriangleWeight, Seed: 5})
	for _, e := range edges {
		s.Process(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gps.EstimatePost(s)
	}
}

// estimate100K builds the m=100K triangle-weighted sampler over the
// 1M-edge engine stream shared by the EstimatePost100K benchmarks.
var estimate100K struct {
	once sync.Once
	s    *gps.Sampler
}

func estimate100KSampler(b *testing.B) *gps.Sampler {
	estimate100K.once.Do(func() {
		s, _ := gps.NewSampler(gps.Config{Capacity: 100000, Weight: gps.TriangleWeight, Seed: 5})
		s.ProcessBatch(engineEdges(b))
		estimate100K.s = s
	})
	return estimate100K.s
}

// BenchmarkEstimatePost100K measures the Algorithm 2 scan at the service
// scale (m=100K over a 1M-edge R-MAT stream) on the slot-indexed fast path.
func BenchmarkEstimatePost100K(b *testing.B) {
	s := estimate100KSampler(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gps.EstimatePost(s)
	}
}

// BenchmarkEstimatePost100KLookup is the same scan on the retained
// hash-lookup reference path — the before/after pair recorded in
// BENCH_PR3.json.
func BenchmarkEstimatePost100KLookup(b *testing.B) {
	s := estimate100KSampler(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.EstimatePostLookup(s)
	}
}

// --- Service-layer benchmarks: snapshot pause and wire-format codec ---

// BenchmarkEngineSnapshot1M measures the full low-pause query path of the
// live service — barrier + dirty-shard clone + merge — on a 100K-edge
// reservoir over the 1M-edge engine stream, with every shard dirtied
// before each snapshot (the worst case: all shards clone every time).
func BenchmarkEngineSnapshot1M(b *testing.B) {
	edges := engineEdges(b)
	p, err := gps.NewParallel(gps.Config{Capacity: 100000, Seed: 9}, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(edges)
	base := snapshotStatsBase(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Replayed edges dirty every shard without changing the sample
		// distribution materially between iterations.
		p.ProcessBatch(edges[:4096])
		b.StartTimer()
		if _, err := p.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
	reportSnapshotStall(b, p, base)
}

// BenchmarkEngineSnapshot1MDirty1of4 is the incremental-snapshot case the
// dirty-shard tracking exists for: between snapshots only one of the four
// shards receives traffic, so a refresh clones 1/4 of the reservoir and
// reuses the other three immutable clones.
func BenchmarkEngineSnapshot1MDirty1of4(b *testing.B) {
	edges := engineEdges(b)
	p, err := gps.NewParallel(gps.Config{Capacity: 100000, Seed: 9}, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(edges)
	var targeted []graph.Edge
	for _, e := range edges {
		if p.ShardOf(e) == 0 {
			targeted = append(targeted, e)
			if len(targeted) == 4096 {
				break
			}
		}
	}
	if _, err := p.Snapshot(); err != nil { // prime the per-shard clones
		b.Fatal(err)
	}
	base := snapshotStatsBase(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p.ProcessBatch(targeted)
		b.StartTimer()
		if _, err := p.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
	reportSnapshotStall(b, p, base)
}

// BenchmarkEngineSnapshot1MClean measures a snapshot with nothing ingested
// since the last one: no clones at all, just barrier + merge of the reused
// shard clones.
func BenchmarkEngineSnapshot1MClean(b *testing.B) {
	edges := engineEdges(b)
	p, err := gps.NewParallel(gps.Config{Capacity: 100000, Seed: 9}, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(edges)
	if _, err := p.Snapshot(); err != nil {
		b.Fatal(err)
	}
	base := snapshotStatsBase(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
	reportSnapshotStall(b, p, base)
}

type snapStatsBase struct{ snapshots, cloned uint64 }

// snapshotStatsBase records the counters after priming so the reported
// clones/snap covers only the timed iterations, not the setup snapshots.
func snapshotStatsBase(p *gps.Parallel) snapStatsBase {
	snapshots, cloned, _ := p.SnapshotStats()
	return snapStatsBase{snapshots: snapshots, cloned: cloned}
}

func reportSnapshotStall(b *testing.B, p *gps.Parallel, base snapStatsBase) {
	b.Helper()
	b.ReportMetric(float64(p.LastSnapshotStall().Nanoseconds())/1e6, "stall-ms")
	snapshots, cloned, _ := p.SnapshotStats()
	if n := snapshots - base.snapshots; n > 0 {
		b.ReportMetric(float64(cloned-base.cloned)/float64(n), "clones/snap")
	}
}

// BenchmarkBinaryEncode measures the GPSB wire-format encoder, ns/edge.
func BenchmarkBinaryEncode(b *testing.B) {
	edges := engineEdges(b)[:1_000_000]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := gps.WriteBinary(io.Discard, edges); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(edges)), "ns/edge")
}

// BenchmarkBinaryDecode measures the GPSB wire-format decoder, ns/edge.
func BenchmarkBinaryDecode(b *testing.B) {
	edges := engineEdges(b)[:1_000_000]
	var buf bytes.Buffer
	if err := gps.WriteBinary(&buf, edges); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := gps.ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(edges) {
			b.Fatalf("decoded %d edges, want %d", len(got), len(edges))
		}
	}
	b.ReportMetric(float64(buf.Len())/float64(len(edges)), "bytes/edge")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(edges)), "ns/edge")
}

// BenchmarkEngineCheckpoint1M measures persisting the whole sharded data
// plane — barrier + dirty clone + GPSC serialization — on a 100K-edge
// reservoir over the 1M-edge engine stream, with every shard dirtied
// before each checkpoint (the worst case: all four blobs re-serialized).
func BenchmarkEngineCheckpoint1M(b *testing.B) {
	edges := engineEdges(b)
	p, err := gps.NewParallel(gps.Config{Capacity: 100000, Seed: 9}, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(edges)
	var total int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p.ProcessBatch(edges[:4096]) // dirty every shard
		b.StartTimer()
		var buf bytes.Buffer
		if _, err := p.WriteCheckpoint(&buf, "uniform"); err != nil {
			b.Fatal(err)
		}
		total += int64(buf.Len())
	}
	b.ReportMetric(float64(total)/float64(b.N)/(1<<20), "MiB/ckpt")
}

// BenchmarkEngineCheckpoint1MIdle is the cached case: nothing moved since
// the previous checkpoint, so every shard blob is reused verbatim and the
// checkpoint degenerates to writing cached bytes.
func BenchmarkEngineCheckpoint1MIdle(b *testing.B) {
	edges := engineEdges(b)
	p, err := gps.NewParallel(gps.Config{Capacity: 100000, Seed: 9}, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(edges)
	if _, err := p.WriteCheckpoint(io.Discard, "uniform"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.WriteCheckpoint(io.Discard, "uniform"); err != nil {
			b.Fatal(err)
		}
	}
	_, encoded, reused := p.CheckpointStats()
	b.ReportMetric(float64(reused)/float64(encoded+reused), "blob-reuse-frac")
}

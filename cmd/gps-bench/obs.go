package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"encoding/json"

	"gps"
	"gps/internal/graph"
	"gps/internal/obs"
	"gps/internal/serve"
	"gps/internal/stream"
)

// obsReport is the observability-overhead experiment: the engine ingest hot
// path and the cached-query serve path, measured on whichever build flavor
// this binary is (Instrumented records it). scripts/bench.sh runs it twice
// — once per flavor — and feeds both files into the perf report, which
// computes the instrumented/noobs ratios the ≤2% overhead bar is judged on.
type obsReport struct {
	Schema       string `json:"schema"`
	Instrumented bool   `json:"instrumented"`
	Edges        int    `json:"edges"`
	SampleM      int    `json:"m"`
	Shards       int    `json:"shards"`
	GoMaxProc    int    `json:"gomaxprocs"`

	// Sharded-engine ingest, wall ns/edge, best of 5 (producers = shards):
	// uniform, triangle and decayed — the three hot paths the drain-batch
	// histogram sits on. Min over repetitions estimates the uncontended
	// cost, which is what the flavor ratio compares.
	IngestNSPerEdge map[string]float64 `json:"ingest_ns_per_edge"`

	// Cached /v1/estimate latency through real HTTP (the instrumented route
	// middleware is on this path), plus one /metrics scrape.
	CachedQueryP50US float64 `json:"cached_query_p50_us"`
	CachedQueryP99US float64 `json:"cached_query_p99_us"`
	ScrapeMS         float64 `json:"scrape_ms"`
	ScrapeFamilies   int     `json:"scrape_families"`
	ScrapeSamples    int     `json:"scrape_samples"`
}

// obsBench measures the two surfaces instrumentation touches: raw engine
// ingest (where per-batch histogram records must vanish into the noise) and
// the serve query path (where the middleware adds per-request work by
// design). The serve phase also scrapes and lints /metrics, so a failing
// exposition fails the bench.
func obsBench(edges, sample, shards int, seed uint64) (*obsReport, error) {
	if edges < 1 || sample < 1 || shards < 1 {
		return nil, fmt.Errorf("obs: need positive -edges, -sample and -shards")
	}
	es, _ := rmatStream(edges, seed)
	edges = len(es)
	r := &obsReport{
		Schema:          "gps-bench/obs/v1",
		Instrumented:    obs.Enabled,
		Edges:           edges,
		SampleM:         sample,
		Shards:          shards,
		GoMaxProc:       runtime.GOMAXPROCS(0),
		IngestNSPerEdge: map[string]float64{},
	}

	bestOf := func(es []graph.Edge, cfg gps.Config) (float64, error) {
		best := 0.0
		for rep := 0; rep < 5; rep++ {
			ns, _, err := ingestParallel(es, cfg, shards, shards)
			if err != nil {
				return 0, err
			}
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best, nil
	}
	var err error
	if r.IngestNSPerEdge["uniform"], err = bestOf(es, gps.Config{Capacity: sample, Seed: seed}); err != nil {
		return nil, err
	}
	if r.IngestNSPerEdge["triangle"], err = bestOf(es, gps.Config{
		Capacity: sample, Weight: gps.TriangleWeight, Seed: seed,
	}); err != nil {
		return nil, err
	}
	timed := make([]graph.Edge, len(es))
	for i, e := range es {
		timed[i] = e.At(uint64(i + 1))
	}
	if r.IngestNSPerEdge["decayed"], err = bestOf(timed, gps.Config{
		Capacity: sample, Weight: gps.TriangleWeight, Seed: seed,
		Decay: gps.Decay{HalfLife: float64(len(timed)) / 10},
	}); err != nil {
		return nil, err
	}

	// Serve path: a real server over loopback HTTP, queries hitting the
	// snapshot cache (one refresh, then hits).
	servedEdges := edges
	if servedEdges > 200_000 {
		servedEdges = 200_000 // the cached-query cost is m-bound, not stream-bound
	}
	srv, err := serve.NewServer(serve.Config{
		Capacity:     sample,
		Weight:       gps.TriangleWeight,
		WeightName:   "triangle",
		Seed:         seed,
		Shards:       shards,
		MaxStaleness: time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const batch = 8192
	for lo := 0; lo < servedEdges; lo += batch {
		hi := lo + batch
		if hi > servedEdges {
			hi = servedEdges
		}
		var buf bytes.Buffer
		if err := stream.WriteBinary(&buf, es[lo:hi]); err != nil {
			return nil, err
		}
		resp, err := http.Post(ts.URL+"/v1/ingest", stream.BinaryContentType, &buf)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return nil, fmt.Errorf("obs: ingest status %d", resp.StatusCode)
		}
	}
	if resp, err := http.Post(ts.URL+"/v1/flush", "", nil); err != nil {
		return nil, err
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	const queries = 300
	lat := make([]time.Duration, 0, queries)
	for i := 0; i < queries; i++ {
		start := time.Now()
		resp, err := http.Get(ts.URL + "/v1/estimate")
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	us := func(p float64) float64 {
		return float64(lat[int(p*float64(len(lat)-1))]) / float64(time.Microsecond)
	}
	r.CachedQueryP50US = us(0.50)
	r.CachedQueryP99US = us(0.99)

	scrapeStart := time.Now()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	r.ScrapeMS = ms(time.Since(scrapeStart))
	fams, samples, err := obs.CheckExposition(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("obs: /metrics fails lint: %w", err)
	}
	r.ScrapeFamilies, r.ScrapeSamples = fams, samples
	return r, nil
}

// renderObs is the human-readable form of the obs report.
func renderObs(r *obsReport) string {
	var b strings.Builder
	flavor := "instrumented"
	if !r.Instrumented {
		flavor = "gps_noobs"
	}
	fmt.Fprintf(&b, "build: %s; stream: %d edges; m=%d, P=%d shards, GOMAXPROCS=%d\n\n",
		flavor, r.Edges, r.SampleM, r.Shards, r.GoMaxProc)
	fmt.Fprintf(&b, "engine ingest (ns/edge, best of 5, producers = shards):\n")
	for _, k := range []string{"uniform", "triangle", "decayed"} {
		fmt.Fprintf(&b, "  %-10s %8.0f\n", k, r.IngestNSPerEdge[k])
	}
	fmt.Fprintf(&b, "\ncached /v1/estimate over HTTP: p50 %.0fµs   p99 %.0fµs\n",
		r.CachedQueryP50US, r.CachedQueryP99US)
	fmt.Fprintf(&b, "/metrics scrape: %.2fms, %d families, %d samples (lint clean)\n",
		r.ScrapeMS, r.ScrapeFamilies, r.ScrapeSamples)
	return b.String()
}

// loadObsOverhead reads the obs report files bench.sh produced — a
// comma-separated list per build flavor, one file per interleaved round —
// checks they are what they claim to be, min-merges the rounds (the min
// over interleaved A/B rounds estimates each flavor's uncontended cost,
// cancelling slow drift a single back-to-back pair would fold into the
// ratio), and computes the instrumented/noobs ratios embedded into the
// perf report.
func loadObsOverhead(instrPaths, noobsPaths string) (*obsOverhead, error) {
	loadOne := func(path string, wantInstrumented bool) (*obsReport, error) {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r obsReport
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if r.Schema != "gps-bench/obs/v1" {
			return nil, fmt.Errorf("%s: schema %q, want gps-bench/obs/v1", path, r.Schema)
		}
		if r.Instrumented != wantInstrumented {
			return nil, fmt.Errorf("%s: instrumented=%v — the flavors are swapped or the same binary ran twice",
				path, r.Instrumented)
		}
		return &r, nil
	}
	load := func(paths string, wantInstrumented bool) (*obsReport, error) {
		var merged *obsReport
		for _, path := range strings.Split(paths, ",") {
			r, err := loadOne(strings.TrimSpace(path), wantInstrumented)
			if err != nil {
				return nil, err
			}
			if merged == nil {
				merged = r
				continue
			}
			for k, v := range r.IngestNSPerEdge {
				if old, ok := merged.IngestNSPerEdge[k]; !ok || v < old {
					merged.IngestNSPerEdge[k] = v
				}
			}
			if r.CachedQueryP50US < merged.CachedQueryP50US {
				merged.CachedQueryP50US = r.CachedQueryP50US
			}
			if r.CachedQueryP99US < merged.CachedQueryP99US {
				merged.CachedQueryP99US = r.CachedQueryP99US
			}
		}
		return merged, nil
	}
	instr, err := load(instrPaths, true)
	if err != nil {
		return nil, err
	}
	noobs, err := load(noobsPaths, false)
	if err != nil {
		return nil, err
	}
	oh := &obsOverhead{Instrumented: instr, NoObs: noobs, IngestRatio: map[string]float64{}}
	for k, n := range noobs.IngestNSPerEdge {
		if n > 0 {
			oh.IngestRatio[k] = instr.IngestNSPerEdge[k] / n
		}
	}
	if noobs.CachedQueryP50US > 0 {
		oh.CachedQueryP50Ratio = instr.CachedQueryP50US / noobs.CachedQueryP50US
	}
	return oh, nil
}

// lintExposition validates a Prometheus text exposition file with the
// in-repo checker (gps-bench -lint FILE; "-" reads stdin). The smoke script
// uses it to validate a live scrape without any external tooling.
func lintExposition(path string, stdout io.Writer) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	fams, samples, err := obs.CheckExposition(r)
	if err != nil {
		return fmt.Errorf("lint %s: %w", path, err)
	}
	fmt.Fprintf(stdout, "%s: valid exposition, %d families, %d samples\n", path, fams, samples)
	return nil
}

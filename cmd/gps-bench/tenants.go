package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"gps"
	"gps/internal/graph"
	"gps/internal/serve"
	"gps/internal/stream"
)

// multiStreamResult is one point of the multi-tenant serve trajectory
// (schema v6): a single server hosting N streams, each fed by its own
// concurrent producer over loopback HTTP, then queried round-robin against
// warm snapshot caches. The N=1 point is the plain single-tenant server, so
// the later points read directly as the cost of tenancy.
type multiStreamResult struct {
	Streams int `json:"streams"`

	// Wall ns per edge across all producers, ingest-through-drain.
	IngestNSPerEdge float64 `json:"ingest_ns_per_edge"`

	// Cached /v1/estimate latency, queries cycling over the streams.
	CachedQueryP50US float64 `json:"cached_query_p50_us"`
	CachedQueryP99US float64 `json:"cached_query_p99_us"`
}

// multiStreamBench measures the serve plane at each stream count. The edge
// budget and reservoir are fixed per server, split evenly across its
// streams: total work is constant, so the trajectory isolates the
// per-tenant overhead (queue fan-out, per-stream snapshot caches, labeled
// metrics) rather than scaling the problem with N.
func multiStreamBench(es []graph.Edge, sample int, shards int, seed uint64, counts []int) ([]multiStreamResult, error) {
	if len(es) > 200_000 {
		es = es[:200_000] // serve-path costs are m- and HTTP-bound, not stream-bound
	}
	var out []multiStreamResult
	for _, n := range counts {
		if n < 1 {
			return nil, fmt.Errorf("tenants: stream counts must be positive, got %d", n)
		}
		res, err := oneMultiStreamRun(es, sample, shards, seed, n)
		if err != nil {
			return nil, err
		}
		out = append(out, *res)
	}
	return out, nil
}

func oneMultiStreamRun(es []graph.Edge, sample, shards int, seed uint64, n int) (*multiStreamResult, error) {
	perCap := sample / n
	if perCap < 100 {
		perCap = 100
	}
	cfg := serve.Config{
		Capacity:     perCap,
		Weight:       gps.TriangleWeight,
		WeightName:   "triangle",
		Seed:         seed,
		Shards:       shards,
		MaxStaleness: time.Second,
	}
	names := []string{""} // "" = the default stream
	for i := 1; i < n; i++ {
		name := fmt.Sprintf("t%d", i)
		cfg.Streams = append(cfg.Streams, serve.StreamSpec{Name: name})
		names = append(names, name)
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One producer per stream, each pushing its contiguous stripe in
	// 8192-edge binary batches.
	stripe := (len(es) + n - 1) / n
	errs := make(chan error, n)
	start := time.Now()
	for i, name := range names {
		lo := i * stripe
		if lo >= len(es) {
			errs <- nil
			continue
		}
		hi := lo + stripe
		if hi > len(es) {
			hi = len(es)
		}
		go func(name string, part []graph.Edge) {
			errs <- streamProduce(ts.URL, name, part)
		}(name, es[lo:hi])
	}
	for range names {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	// Flush every stream: the drain is part of the measured ingest window.
	for _, name := range names {
		resp, err := http.Post(ts.URL+"/v1/flush"+streamQuery(name), "", nil)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("tenants: flush %q status %d", name, resp.StatusCode)
		}
	}
	r := &multiStreamResult{
		Streams:         n,
		IngestNSPerEdge: float64(time.Since(start).Nanoseconds()) / float64(len(es)),
	}

	// Warm every cache, then time queries cycling over the streams.
	for _, name := range names {
		if err := streamQueryOnce(ts.URL, name); err != nil {
			return nil, err
		}
	}
	const queries = 300
	lat := make([]time.Duration, 0, queries)
	for i := 0; i < queries; i++ {
		name := names[i%len(names)]
		qs := time.Now()
		if err := streamQueryOnce(ts.URL, name); err != nil {
			return nil, err
		}
		lat = append(lat, time.Since(qs))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	us := func(p float64) float64 {
		return float64(lat[int(p*float64(len(lat)-1))]) / float64(time.Microsecond)
	}
	r.CachedQueryP50US = us(0.50)
	r.CachedQueryP99US = us(0.99)
	return r, nil
}

func streamQuery(name string) string {
	if name == "" {
		return ""
	}
	return "?stream=" + name
}

func streamProduce(base, name string, part []graph.Edge) error {
	const batch = 8192
	for lo := 0; lo < len(part); lo += batch {
		hi := lo + batch
		if hi > len(part) {
			hi = len(part)
		}
		var buf bytes.Buffer
		if err := stream.WriteBinary(&buf, part[lo:hi]); err != nil {
			return err
		}
		resp, err := http.Post(base+"/v1/ingest"+streamQuery(name), stream.BinaryContentType, &buf)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		status := resp.StatusCode
		resp.Body.Close()
		switch status {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			// Fair-share backpressure: wait and retry the batch.
			time.Sleep(5 * time.Millisecond)
			lo -= batch
		default:
			return fmt.Errorf("tenants: ingest %q status %d", name, status)
		}
	}
	return nil
}

func streamQueryOnce(base, name string) error {
	resp, err := http.Get(base + "/v1/estimate" + streamQuery(name))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("tenants: estimate %q status %d", name, resp.StatusCode)
	}
	return nil
}

// Command gps-bench regenerates the paper's evaluation tables and figures
// from the synthetic stand-in datasets at configurable scale.
//
// Usage:
//
//	gps-bench -exp table1|table2|table3|fig1|fig2|fig3|weights|extensions|throughput|all \
//	          [-profile small|full] [-trials N] [-sample M] [-budget B] \
//	          [-checkpoints C] [-seed S] [-graphs a,b,c] [-edges N] [-shards P]
//
// Examples:
//
//	gps-bench -exp table1                  # Table 1 at the default scale
//	gps-bench -exp table2 -budget 20000    # baselines at a 20K edge budget
//	gps-bench -exp fig2 -profile full      # convergence sweep, 8× datasets
//	gps-bench -exp throughput -edges 4000000 -shards 8
//	                                       # sequential vs batched vs sharded rate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gps"
	"gps/internal/datasets"
	"gps/internal/experiments"
	"gps/internal/gen"
	"gps/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "gps-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, errw io.Writer) error {
	fs := flag.NewFlagSet("gps-bench", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		exp         = fs.String("exp", "all", "experiment: table1, table2, table3, fig1, fig2, fig3, weights, extensions, throughput, all")
		profileName = fs.String("profile", "small", "dataset scale: small or full")
		trials      = fs.Int("trials", 3, "replications per configuration")
		sample      = fs.Int("sample", 20000, "GPS sample size m (table1, fig1, fig3, weights)")
		budget      = fs.Int("budget", 10000, "edge budget for the baseline comparisons (table2, table3, extensions)")
		checkpoints = fs.Int("checkpoints", 20, "checkpoints along the stream (table3, fig3)")
		seed        = fs.Uint64("seed", 0x69505321, "root seed for all randomness")
		edges       = fs.Int("edges", 1_000_000, "synthetic stream length for -exp throughput")
		shardsFlag  = fs.Int("shards", 4, "shard count for the parallel sampler (throughput)")
		graphsFlag  = fs.String("graphs", "", "comma-separated dataset names (default: the paper's list per experiment)")
		list        = fs.Bool("list", false, "list available datasets and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range datasets.Names() {
			d, _ := datasets.Get(name)
			fmt.Fprintf(stdout, "%-22s %-14s %s\n", d.Name, d.Kind, d.Notes)
		}
		return nil
	}

	profile := datasets.Small
	switch *profileName {
	case "small":
	case "full":
		profile = datasets.Full
	default:
		return fmt.Errorf("unknown profile %q (want small or full)", *profileName)
	}
	opts := experiments.Options{Profile: profile, Trials: *trials, Seed: *seed}

	var graphs []string
	if *graphsFlag != "" {
		graphs = strings.Split(*graphsFlag, ",")
	}

	emit := func(title, body string) {
		fmt.Fprintf(stdout, "===== %s =====\n%s\n", title, body)
	}
	runOne := func(name string) error {
		switch name {
		case "table1":
			rows, err := experiments.Table1(opts, *sample, graphs)
			if err != nil {
				return err
			}
			emit("Table 1 — GPS in-stream vs post-stream estimation", experiments.RenderTable1(rows))
		case "table2":
			rows, err := experiments.Table2(opts, *budget, graphs)
			if err != nil {
				return err
			}
			emit("Table 2 — baseline comparison at equal edge budget", experiments.RenderTable2(rows))
		case "table3":
			rows, err := experiments.Table3(opts, *budget, *checkpoints, graphs)
			if err != nil {
				return err
			}
			emit("Table 3 — triangle tracking error vs time", experiments.RenderTable3(rows))
		case "fig1":
			pts, err := experiments.Figure1(opts, *sample, graphs)
			if err != nil {
				return err
			}
			emit("Figure 1 — x̂/x for triangles and wedges (in-stream)", experiments.RenderFigure1(pts))
		case "fig2":
			series, err := experiments.Figure2(opts, nil, graphs)
			if err != nil {
				return err
			}
			emit("Figure 2 — convergence with confidence bounds",
				experiments.RenderFigure2(series)+"\n"+experiments.PlotFigure2(series))
		case "fig3":
			series, err := experiments.Figure3(opts, *sample, *checkpoints, graphs)
			if err != nil {
				return err
			}
			emit("Figure 3 — real-time tracking",
				experiments.RenderFigure3(series)+"\n"+experiments.PlotFigure3(series))
		case "weights":
			graphName := "socfb-Penn94"
			if len(graphs) > 0 {
				graphName = graphs[0]
			}
			rows, err := experiments.WeightAblation(opts, *sample, graphName)
			if err != nil {
				return err
			}
			emit("§3.5 ablation — weight functions ("+graphName+")", experiments.RenderAblation(rows))
		case "throughput":
			body, err := throughput(*edges, *sample, *shardsFlag, *seed)
			if err != nil {
				return err
			}
			emit("Throughput — sequential vs batched vs sharded sampling", body)
		case "extensions":
			rows, err := experiments.Extensions(opts, *budget, graphs)
			if err != nil {
				return err
			}
			emit("Extensions — JHA and Buriol vs GPS (comparisons the paper omitted)", experiments.RenderExtensions(rows))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "fig1", "fig2", "fig3", "weights", "extensions"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*exp)
}

// throughput measures end-to-end sampling rate over a synthetic R-MAT
// stream for the three feeding paths: per-edge Process, batched
// ProcessBatch, and the sharded Parallel sampler — once with uniform
// weights (the pure sampling hot path) and once with triangle weights (the
// topology-dependent workload the paper centres on). The stream is
// generated up front so only sampler time is measured.
func throughput(edges, sample, shards int, seed uint64) (string, error) {
	if edges < 1 || sample < 1 || shards < 1 {
		return "", fmt.Errorf("throughput: need positive -edges, -sample and -shards")
	}
	// R-MAT scale chosen so the generator yields at least the requested
	// stream length; the stream is then truncated to exactly -edges.
	scale := 10
	for (1<<scale)*16 < edges {
		scale++
	}
	all := gen.RMAT(scale, 16, 0.57, 0.19, 0.19, seed)
	if len(all) < edges {
		edges = len(all)
	}
	es := stream.Collect(stream.Permute(all, seed^0x7EA))[:edges]

	var b strings.Builder
	fmt.Fprintf(&b, "stream: R-MAT scale %d, %d edges; m=%d, P=%d\n\n", scale, edges, sample, shards)
	fmt.Fprintf(&b, "%-28s %12s %14s\n", "path", "elapsed", "edges/sec")
	row := func(name string, run func() error) error {
		start := time.Now()
		if err := run(); err != nil {
			return err
		}
		el := time.Since(start)
		fmt.Fprintf(&b, "%-28s %12s %14.0f\n", name, el.Round(time.Millisecond), float64(edges)/el.Seconds())
		return nil
	}

	type variant struct {
		name   string
		weight gps.WeightFunc
	}
	for _, v := range []variant{{"uniform", gps.UniformWeight}, {"triangle", gps.TriangleWeight}} {
		cfg := gps.Config{Capacity: sample, Weight: v.weight, Seed: seed}
		if err := row(v.name+"/sequential", func() error {
			s, err := gps.NewSampler(cfg)
			if err != nil {
				return err
			}
			for _, e := range es {
				s.Process(e)
			}
			return nil
		}); err != nil {
			return "", err
		}
		if err := row(v.name+"/batched", func() error {
			s, err := gps.NewSampler(cfg)
			if err != nil {
				return err
			}
			for lo := 0; lo < len(es); lo += 8192 {
				hi := lo + 8192
				if hi > len(es) {
					hi = len(es)
				}
				s.ProcessBatch(es[lo:hi])
			}
			return nil
		}); err != nil {
			return "", err
		}
		if err := row(fmt.Sprintf("%s/parallel-%d", v.name, shards), func() error {
			p, err := gps.NewParallel(cfg, shards)
			if err != nil {
				return err
			}
			defer p.Close()
			p.ProcessBatch(es)
			_, err = p.Merge()
			return err
		}); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

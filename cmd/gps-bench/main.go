// Command gps-bench regenerates the paper's evaluation tables and figures
// from the synthetic stand-in datasets at configurable scale.
//
// Usage:
//
//	gps-bench -exp table1|table2|table3|fig1|fig2|fig3|weights|extensions|accuracy|decay|window|throughput|serve|perf|obs|all \
//	          [-profile small|full] [-trials N] [-sample M] [-budget B] [-json] \
//	          [-checkpoints C] [-seed S] [-graphs a,b,c] [-edges N] [-shards P] [-clients Q] \
//	          [-procs 1,2,4,8] [-obs-instrumented F -obs-noobs F]
//	gps-bench -lint FILE|-                 # validate a Prometheus text exposition
//
// Examples:
//
//	gps-bench -exp table1                  # Table 1 at the default scale
//	gps-bench -exp table2 -budget 20000    # baselines at a 20K edge budget
//	gps-bench -exp fig2 -profile full      # convergence sweep, 8× datasets
//	gps-bench -exp throughput -edges 4000000 -shards 8
//	                                       # sequential vs batched vs sharded rate
//	gps-bench -exp serve -edges 1000000 -clients 8
//	                                       # live service: ingest rate + query latency
//	gps-bench -exp perf -json -edges 1000000 -sample 100000 -shards 4 -procs 1,4,8
//	                                       # machine-readable perf trajectory (BENCH_PR*.json)
//	                                       # incl. the GOMAXPROCS ingest sweep
//	gps-bench -exp obs -edges 1000000 -sample 100000 -shards 4
//	                                       # observability overhead: ingest ns/edge +
//	                                       # cached-query latency on this build flavor
//	                                       # (run again with -tags gps_noobs to compare)
//	curl -s localhost:6060/metrics | gps-bench -lint -
//	                                       # lint a live scrape with the in-repo checker
//
// -json switches the perf and throughput experiments to machine-readable
// output (one JSON document on stdout); scripts/bench.sh uses it to record
// the perf trajectory as a CI artifact.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gps"
	"gps/internal/datasets"
	"gps/internal/experiments"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/serve"
	"gps/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "gps-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, errw io.Writer) error {
	fs := flag.NewFlagSet("gps-bench", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		exp         = fs.String("exp", "all", "experiment: table1, table2, table3, fig1, fig2, fig3, weights, extensions, accuracy, decay, window, throughput, serve, perf, obs, chaos, all")
		jsonOut     = fs.Bool("json", false, "machine-readable JSON output (perf, throughput, decay, window and obs experiments)")
		profileName = fs.String("profile", "small", "dataset scale: small or full")
		trials      = fs.Int("trials", 3, "replications per configuration")
		sample      = fs.Int("sample", 20000, "GPS sample size m (table1, fig1, fig3, weights)")
		budget      = fs.Int("budget", 10000, "edge budget for the baseline comparisons (table2, table3, extensions)")
		checkpoints = fs.Int("checkpoints", 20, "checkpoints along the stream (table3, fig3)")
		seed        = fs.Uint64("seed", 0x69505321, "root seed for all randomness")
		edges       = fs.Int("edges", 1_000_000, "synthetic stream length for -exp throughput/serve")
		shardsFlag  = fs.Int("shards", 4, "shard count for the parallel sampler (throughput, serve)")
		procsFlag   = fs.String("procs", "1,2,4,8", "comma-separated GOMAXPROCS sweep for -exp perf (empty skips the sweep)")
		clients     = fs.Int("clients", 8, "concurrent query clients for -exp serve")
		graphsFlag  = fs.String("graphs", "", "comma-separated dataset names (default: the paper's list per experiment)")
		list        = fs.Bool("list", false, "list available datasets and exit")
		lintFile    = fs.String("lint", "", "validate a Prometheus text exposition file and exit (\"-\" reads stdin)")
		obsInstr    = fs.String("obs-instrumented", "", "obs report JSON from the instrumented build (comma-separated rounds, min-merged), embedded into -exp perf")
		obsNoObs    = fs.String("obs-noobs", "", "obs report JSON from the gps_noobs build (comma-separated rounds, min-merged), embedded into -exp perf")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *lintFile != "" {
		return lintExposition(*lintFile, stdout)
	}
	if (*obsInstr == "") != (*obsNoObs == "") {
		return fmt.Errorf("-obs-instrumented and -obs-noobs must be given together")
	}

	if *list {
		for _, name := range datasets.Names() {
			d, _ := datasets.Get(name)
			fmt.Fprintf(stdout, "%-22s %-14s %s\n", d.Name, d.Kind, d.Notes)
		}
		return nil
	}

	profile := datasets.Small
	switch *profileName {
	case "small":
	case "full":
		profile = datasets.Full
	default:
		return fmt.Errorf("unknown profile %q (want small or full)", *profileName)
	}
	opts := experiments.Options{Profile: profile, Trials: *trials, Seed: *seed}

	var graphs []string
	if *graphsFlag != "" {
		graphs = strings.Split(*graphsFlag, ",")
	}

	emit := func(title, body string) {
		fmt.Fprintf(stdout, "===== %s =====\n%s\n", title, body)
	}
	emitJSON := func(v any) error {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	runOne := func(name string) error {
		if *jsonOut && name != "perf" && name != "throughput" && name != "decay" && name != "window" && name != "obs" {
			return fmt.Errorf("-json is supported for -exp perf, throughput, decay, window and obs, not %q", name)
		}
		switch name {
		case "table1":
			rows, err := experiments.Table1(opts, *sample, graphs)
			if err != nil {
				return err
			}
			emit("Table 1 — GPS in-stream vs post-stream estimation", experiments.RenderTable1(rows))
		case "table2":
			rows, err := experiments.Table2(opts, *budget, graphs)
			if err != nil {
				return err
			}
			emit("Table 2 — baseline comparison at equal edge budget", experiments.RenderTable2(rows))
		case "table3":
			rows, err := experiments.Table3(opts, *budget, *checkpoints, graphs)
			if err != nil {
				return err
			}
			emit("Table 3 — triangle tracking error vs time", experiments.RenderTable3(rows))
		case "fig1":
			pts, err := experiments.Figure1(opts, *sample, graphs)
			if err != nil {
				return err
			}
			emit("Figure 1 — x̂/x for triangles and wedges (in-stream)", experiments.RenderFigure1(pts))
		case "fig2":
			series, err := experiments.Figure2(opts, nil, graphs)
			if err != nil {
				return err
			}
			emit("Figure 2 — convergence with confidence bounds",
				experiments.RenderFigure2(series)+"\n"+experiments.PlotFigure2(series))
		case "fig3":
			series, err := experiments.Figure3(opts, *sample, *checkpoints, graphs)
			if err != nil {
				return err
			}
			emit("Figure 3 — real-time tracking",
				experiments.RenderFigure3(series)+"\n"+experiments.PlotFigure3(series))
		case "weights":
			graphName := "socfb-Penn94"
			if len(graphs) > 0 {
				graphName = graphs[0]
			}
			rows, err := experiments.WeightAblation(opts, *sample, graphName)
			if err != nil {
				return err
			}
			emit("§3.5 ablation — weight functions ("+graphName+")", experiments.RenderAblation(rows))
		case "throughput":
			rep, err := throughput(*edges, *sample, *shardsFlag, *seed)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emitJSON(rep)
			}
			emit("Throughput — sequential vs batched vs sharded sampling", renderThroughput(rep))
		case "perf":
			procs, err := parseProcs(*procsFlag)
			if err != nil {
				return err
			}
			rep, err := perfBench(*edges, *sample, *shardsFlag, *seed, procs)
			if err != nil {
				return err
			}
			if *obsInstr != "" {
				oh, err := loadObsOverhead(*obsInstr, *obsNoObs)
				if err != nil {
					return err
				}
				rep.ObsOverhead = oh
			}
			if *jsonOut {
				return emitJSON(rep)
			}
			emit("Perf — slot-indexed estimation + incremental snapshots", renderPerf(rep))
		case "obs":
			rep, err := obsBench(*edges, *sample, *shardsFlag, *seed)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emitJSON(rep)
			}
			emit("Obs — instrumentation overhead on the ingest and query paths", renderObs(rep))
		case "serve":
			body, err := serveBench(*edges, *sample, *shardsFlag, *clients, *seed)
			if err != nil {
				return err
			}
			emit("Serve — concurrent ingestion + query latency over HTTP", body)
		case "chaos":
			body, err := chaosBench(*edges, *sample, *shardsFlag, *seed)
			if err != nil {
				return err
			}
			emit("Chaos — fault-injected run vs fault-free baseline (equivalence drill)", body)
		case "extensions":
			rows, err := experiments.Extensions(opts, *budget, graphs)
			if err != nil {
				return err
			}
			emit("Extensions — JHA and Buriol vs GPS (comparisons the paper omitted)", experiments.RenderExtensions(rows))
		case "accuracy":
			rows, err := experiments.Accuracy(opts, nil, graphs)
			if err != nil {
				return err
			}
			emit("Accuracy — motif estimator NRMSE vs exact counts across m", experiments.RenderAccuracy(rows))
		case "decay":
			rows, err := experiments.DecayAccuracy(opts, experiments.DecayConfig{Shards: *shardsFlag})
			if err != nil {
				return err
			}
			if *jsonOut {
				return emitJSON(map[string]any{"schema": "gps-bench/decay/v1", "rows": rows})
			}
			emit("Decay — forward-decayed estimates vs exact decayed counts", experiments.RenderDecay(rows))
		case "window":
			rows, err := experiments.WindowAccuracy(opts, experiments.WindowConfig{Shards: *shardsFlag})
			if err != nil {
				return err
			}
			if *jsonOut {
				return emitJSON(map[string]any{"schema": "gps-bench/window/v1", "rows": rows})
			}
			emit("Window — turnstile sliding-window estimates vs exact in-window counts", experiments.RenderWindow(rows))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if *exp == "all" {
		if *jsonOut {
			return fmt.Errorf("-json is supported for -exp perf and -exp throughput, not \"all\"")
		}
		for _, name := range []string{"table1", "table2", "table3", "fig1", "fig2", "fig3", "weights", "extensions"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*exp)
}

// parseProcs parses the -procs sweep list ("1,2,4,8"); an empty string
// means no sweep.
func parseProcs(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -procs entry %q (want positive integers)", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// throughputReport is the result of the throughput experiment, renderable
// as a text table or emitted as JSON with -json.
type throughputReport struct {
	Schema  string          `json:"schema"`
	Scale   int             `json:"rmat_scale"`
	Edges   int             `json:"edges"`
	SampleM int             `json:"m"`
	Shards  int             `json:"shards"`
	Rows    []throughputRow `json:"rows"`
}

type throughputRow struct {
	Path        string  `json:"path"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	EdgesPerSec float64 `json:"edges_per_sec"`
	NSPerEdge   float64 `json:"ns_per_edge"`
}

// throughput measures end-to-end sampling rate over a synthetic R-MAT
// stream for the three feeding paths: per-edge Process, batched
// ProcessBatch, and the sharded Parallel sampler — once with uniform
// weights (the pure sampling hot path) and once with triangle weights (the
// topology-dependent workload the paper centres on). The stream is
// generated up front so only sampler time is measured.
func throughput(edges, sample, shards int, seed uint64) (*throughputReport, error) {
	if edges < 1 || sample < 1 || shards < 1 {
		return nil, fmt.Errorf("throughput: need positive -edges, -sample and -shards")
	}
	es, scale := rmatStream(edges, seed)
	edges = len(es)

	rep := &throughputReport{
		Schema: "gps-bench/throughput/v1", Scale: scale, Edges: edges, SampleM: sample, Shards: shards,
	}
	row := func(name string, run func() error) error {
		start := time.Now()
		if err := run(); err != nil {
			return err
		}
		el := time.Since(start)
		rep.Rows = append(rep.Rows, throughputRow{
			Path:        name,
			ElapsedMS:   float64(el) / float64(time.Millisecond),
			EdgesPerSec: float64(edges) / el.Seconds(),
			NSPerEdge:   float64(el.Nanoseconds()) / float64(edges),
		})
		return nil
	}

	type variant struct {
		name   string
		weight gps.WeightFunc
	}
	for _, v := range []variant{{"uniform", gps.UniformWeight}, {"triangle", gps.TriangleWeight}} {
		cfg := gps.Config{Capacity: sample, Weight: v.weight, Seed: seed}
		if err := row(v.name+"/sequential", func() error {
			s, err := gps.NewSampler(cfg)
			if err != nil {
				return err
			}
			for _, e := range es {
				s.Process(e)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		if err := row(v.name+"/batched", func() error {
			s, err := gps.NewSampler(cfg)
			if err != nil {
				return err
			}
			for lo := 0; lo < len(es); lo += 8192 {
				hi := lo + 8192
				if hi > len(es) {
					hi = len(es)
				}
				s.ProcessBatch(es[lo:hi])
			}
			return nil
		}); err != nil {
			return nil, err
		}
		if err := row(fmt.Sprintf("%s/parallel-%d", v.name, shards), func() error {
			p, err := gps.NewParallel(cfg, shards)
			if err != nil {
				return err
			}
			defer p.Close()
			p.ProcessBatch(es)
			_, err = p.Merge()
			return err
		}); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// renderThroughput is the human-readable form of the throughput report.
func renderThroughput(rep *throughputReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream: R-MAT scale %d, %d edges; m=%d, P=%d\n\n", rep.Scale, rep.Edges, rep.SampleM, rep.Shards)
	fmt.Fprintf(&b, "%-28s %12s %14s\n", "path", "elapsed", "edges/sec")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-28s %11.0fms %14.0f\n", r.Path, r.ElapsedMS, r.EdgesPerSec)
	}
	return b.String()
}

// rmatStream generates a permuted R-MAT stream of (up to) the requested
// length, choosing the scale so the generator can supply it.
func rmatStream(edges int, seed uint64) ([]graph.Edge, int) {
	scale := 10
	for (1<<scale)*16 < edges {
		scale++
	}
	all := gen.RMAT(scale, 16, 0.57, 0.19, 0.19, seed)
	if len(all) < edges {
		edges = len(all)
	}
	return stream.Collect(stream.Permute(all, seed^0x7EA))[:edges], scale
}

// serveBench runs the live-service experiment: a gps-serve instance (in
// process, real HTTP over a loopback listener) ingests a binary-framed
// R-MAT stream at full speed while query clients hammer /v1/estimate with
// a 100ms staleness bound. It reports the sustained ingest rate, the query
// throughput and client-observed latency percentiles, and the cost of a
// forced-fresh snapshot at the end of the stream.
func serveBench(edges, sample, shards, clients int, seed uint64) (string, error) {
	if edges < 1 || sample < 1 || shards < 1 || clients < 1 {
		return "", fmt.Errorf("serve: need positive -edges, -sample, -shards and -clients")
	}
	es, scale := rmatStream(edges, seed)
	edges = len(es)

	srv, err := serve.NewServer(serve.Config{
		Capacity:     sample,
		Weight:       gps.TriangleWeight,
		WeightName:   "triangle",
		Seed:         seed,
		Shards:       shards,
		QueueDepth:   64,
		MaxStaleness: 100 * time.Millisecond,
	})
	if err != nil {
		return "", err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Pre-encode the ingest bodies so the measurement is service time, not
	// client-side encoding.
	const batch = 8192
	var bodies [][]byte
	for lo := 0; lo < edges; lo += batch {
		hi := lo + batch
		if hi > edges {
			hi = edges
		}
		var buf bytes.Buffer
		if err := stream.WriteBinary(&buf, es[lo:hi]); err != nil {
			return "", err
		}
		bodies = append(bodies, buf.Bytes())
	}

	type clientStats struct {
		lat     []time.Duration
		queries int
		errs    int
	}
	done := make(chan struct{})
	stats := make([]clientStats, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(cs *clientStats) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				start := time.Now()
				resp, err := http.Get(ts.URL + "/v1/estimate")
				if err != nil {
					cs.errs++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				cs.lat = append(cs.lat, time.Since(start))
				cs.queries++
			}
		}(&stats[c])
	}

	ingestStart := time.Now()
	var retries503 int
	for _, body := range bodies {
		for {
			resp, err := http.Post(ts.URL+"/v1/ingest", stream.BinaryContentType, bytes.NewReader(body))
			if err != nil {
				close(done)
				return "", err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode != http.StatusServiceUnavailable {
				close(done)
				return "", fmt.Errorf("ingest status %d", resp.StatusCode)
			}
			retries503++
			time.Sleep(time.Millisecond)
		}
	}
	// Drain the queue so the rate covers sampling, not just enqueueing.
	resp, err := http.Post(ts.URL+"/v1/flush", "", nil)
	if err != nil {
		close(done)
		return "", err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	ingestElapsed := time.Since(ingestStart)
	close(done)
	wg.Wait()

	// Forced-fresh snapshot: pause + merge + estimate on the final state.
	freshStart := time.Now()
	resp, err = http.Get(ts.URL + "/v1/estimate?max_stale=0s")
	if err != nil {
		return "", err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	freshElapsed := time.Since(freshStart)

	var all []time.Duration
	queries, errs := 0, 0
	for i := range stats {
		all = append(all, stats[i].lat...)
		queries += stats[i].queries
		errs += stats[i].errs
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}

	var b strings.Builder
	fmt.Fprintf(&b, "stream: R-MAT scale %d, %d edges; m=%d, P=%d shards, %d query clients, staleness 100ms\n\n",
		scale, edges, sample, shards, clients)
	fmt.Fprintf(&b, "ingest:  %d edges in %s  =  %.0f edges/sec  (%d batches, %d backpressure retries)\n",
		edges, ingestElapsed.Round(time.Millisecond), float64(edges)/ingestElapsed.Seconds(), len(bodies), retries503)
	fmt.Fprintf(&b, "queries: %d total (%d errors) during ingest  =  %.0f queries/sec\n",
		queries, errs, float64(queries)/ingestElapsed.Seconds())
	fmt.Fprintf(&b, "query latency: p50 %s   p90 %s   p99 %s   max %s\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	fmt.Fprintf(&b, "forced-fresh estimate (snapshot + merge + Alg 2) after stream end: %s\n",
		freshElapsed.Round(time.Microsecond))
	return b.String(), nil
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ca-hollywood-2009", "infra-roadNet-CA", "R-MAT"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list output missing %q", want)
		}
	}
}

// TestPerfBenchSweep smoke-runs the perf report at tiny scale and checks
// the schema-v3 surface: the GOMAXPROCS sweep has one entry per requested
// point with positive rates and baseline-relative speedups, and the decay
// tax is recorded.
func TestPerfBenchSweep(t *testing.T) {
	rep, err := perfBench(30000, 2000, 2, 7, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "gps-bench/perf/v3" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.ProcsSweep) != 2 {
		t.Fatalf("sweep has %d entries, want 2", len(rep.ProcsSweep))
	}
	for i, pr := range rep.ProcsSweep {
		if pr.GoMaxProcs != []int{1, 2}[i] || pr.Producers != pr.GoMaxProcs {
			t.Errorf("entry %d: procs %d producers %d", i, pr.GoMaxProcs, pr.Producers)
		}
		if pr.UniformNSPerEdge <= 0 || pr.DecayNSPerEdge <= 0 || pr.UniformEdgesPerSec <= 0 {
			t.Errorf("entry %d: non-positive rates %+v", i, pr)
		}
		if pr.UniformSpeedup <= 0 || pr.DecaySpeedup <= 0 {
			t.Errorf("entry %d: non-positive speedups %+v", i, pr)
		}
	}
	if rep.ProcsSweep[0].UniformSpeedup != 1 || rep.ProcsSweep[0].DecaySpeedup != 1 {
		t.Error("first sweep point is not the speedup baseline")
	}
	if rep.DecayOverUndecayed <= 0 {
		t.Errorf("decay_over_undecayed = %v", rep.DecayOverUndecayed)
	}
	if strings.Contains(renderPerf(rep), "NaN") {
		t.Error("rendered report contains NaN")
	}
}

// TestParseProcs pins the -procs flag grammar.
func TestParseProcs(t *testing.T) {
	got, err := parseProcs(" 1, 4,8 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 8 {
		t.Fatalf("parseProcs: %v, %v", got, err)
	}
	if got, err := parseProcs(""); err != nil || got != nil {
		t.Fatalf("empty: %v, %v", got, err)
	}
	for _, bad := range []string{"0", "-2", "x", "1,,2"} {
		if _, err := parseProcs(bad); err == nil {
			t.Errorf("parseProcs(%q) accepted", bad)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-exp", "fig1", "-sample", "5000", "-trials", "1", "-graphs", "soc-youtube-snap"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 1") || !strings.Contains(out.String(), "soc-youtube-snap") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestRunThroughput(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-exp", "throughput", "-edges", "30000", "-sample", "2000", "-shards", "2"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"uniform/sequential", "uniform/batched", "triangle/parallel-2", "edges/sec"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("throughput output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunServe(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-exp", "serve", "-edges", "20000", "-sample", "2000", "-shards", "2", "-clients", "3"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ingest:", "queries:", "query latency: p50", "p99", "forced-fresh"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("serve output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-exp", "nope"},
		{"-profile", "huge"},
		{"-exp", "table1", "-graphs", "unknown-graph"},
		{"-exp", "throughput", "-edges", "0"},
		{"-exp", "serve", "-clients", "0"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}

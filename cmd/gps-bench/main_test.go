package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gps/internal/fault"
)

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ca-hollywood-2009", "infra-roadNet-CA", "R-MAT"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list output missing %q", want)
		}
	}
}

// TestPerfBenchSweep smoke-runs the perf report at tiny scale and checks
// the schema-v6 surface: the GOMAXPROCS sweep has one entry per requested
// point with positive rates and baseline-relative speedups, the decay
// tax and windowed-turnstile numbers are recorded, and the multi-tenant
// serve trajectory covers the 1/4/16-stream points.
func TestPerfBenchSweep(t *testing.T) {
	rep, err := perfBench(30000, 2000, 2, 7, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "gps-bench/perf/v6" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.ProcsSweep) != 2 {
		t.Fatalf("sweep has %d entries, want 2", len(rep.ProcsSweep))
	}
	for i, pr := range rep.ProcsSweep {
		if pr.GoMaxProcs != []int{1, 2}[i] || pr.Producers != pr.GoMaxProcs {
			t.Errorf("entry %d: procs %d producers %d", i, pr.GoMaxProcs, pr.Producers)
		}
		if pr.UniformNSPerEdge <= 0 || pr.DecayNSPerEdge <= 0 || pr.UniformEdgesPerSec <= 0 {
			t.Errorf("entry %d: non-positive rates %+v", i, pr)
		}
		if pr.UniformSpeedup <= 0 || pr.DecaySpeedup <= 0 {
			t.Errorf("entry %d: non-positive speedups %+v", i, pr)
		}
	}
	if rep.ProcsSweep[0].UniformSpeedup != 1 || rep.ProcsSweep[0].DecaySpeedup != 1 {
		t.Error("first sweep point is not the speedup baseline")
	}
	if rep.DecayOverUndecayed <= 0 {
		t.Errorf("decay_over_undecayed = %v", rep.DecayOverUndecayed)
	}
	if rep.WindowUpdateNSPerEdge <= 0 || rep.WindowQueryMS <= 0 {
		t.Errorf("window perf: %v ns/edge, query %vms", rep.WindowUpdateNSPerEdge, rep.WindowQueryMS)
	}
	if len(rep.WindowAccuracy) == 0 {
		t.Error("window accuracy rows missing from the perf report")
	}
	if len(rep.MultiStream) != 3 {
		t.Fatalf("multi-stream trajectory has %d points, want 3", len(rep.MultiStream))
	}
	for i, row := range rep.MultiStream {
		if row.Streams != []int{1, 4, 16}[i] {
			t.Errorf("multi-stream point %d covers %d streams", i, row.Streams)
		}
		if row.IngestNSPerEdge <= 0 || row.CachedQueryP50US <= 0 || row.CachedQueryP99US <= 0 {
			t.Errorf("multi-stream point %d has non-positive numbers: %+v", i, row)
		}
	}
	if strings.Contains(renderPerf(rep), "NaN") {
		t.Error("rendered report contains NaN")
	}
}

// TestRunObs smoke-runs the observability-overhead experiment at tiny
// scale: all three ingest paths measured, the serve phase answered queries,
// and the built-in /metrics lint passed (obsBench fails otherwise).
func TestRunObs(t *testing.T) {
	rep, err := obsBench(20000, 2000, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "gps-bench/obs/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	for _, k := range []string{"uniform", "triangle", "decayed"} {
		if rep.IngestNSPerEdge[k] <= 0 {
			t.Errorf("ingest %s = %v, want > 0", k, rep.IngestNSPerEdge[k])
		}
	}
	if rep.CachedQueryP50US <= 0 || rep.CachedQueryP99US < rep.CachedQueryP50US {
		t.Errorf("query percentiles p50=%v p99=%v", rep.CachedQueryP50US, rep.CachedQueryP99US)
	}
	if rep.ScrapeFamilies == 0 || rep.ScrapeSamples == 0 {
		t.Errorf("scrape saw %d families / %d samples", rep.ScrapeFamilies, rep.ScrapeSamples)
	}
	if strings.Contains(renderObs(rep), "NaN") {
		t.Error("rendered report contains NaN")
	}
}

// TestObsOverheadLoading pins the flavor cross-check and ratio math of the
// perf report's obs embedding.
func TestObsOverheadLoading(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, instrumented bool, uniform, p50 float64) string {
		r := obsReport{
			Schema: "gps-bench/obs/v1", Instrumented: instrumented,
			IngestNSPerEdge:  map[string]float64{"uniform": uniform},
			CachedQueryP50US: p50,
		}
		b, _ := json.Marshal(r)
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	instr := write("instr.json", true, 510, 120)
	noobs := write("noobs.json", false, 500, 100)
	oh, err := loadObsOverhead(instr, noobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := oh.IngestRatio["uniform"]; got != 510.0/500.0 {
		t.Errorf("uniform ratio = %v", got)
	}
	if oh.CachedQueryP50Ratio != 1.2 {
		t.Errorf("query ratio = %v", oh.CachedQueryP50Ratio)
	}
	if _, err := loadObsOverhead(noobs, instr); err == nil {
		t.Error("swapped flavors accepted")
	}
	if _, err := loadObsOverhead(instr, instr); err == nil {
		t.Error("same flavor twice accepted")
	}

	// Comma-separated rounds min-merge per path before the ratio.
	instr2 := write("instr2.json", true, 505, 130)
	noobs2 := write("noobs2.json", false, 520, 90)
	oh, err = loadObsOverhead(instr+","+instr2, noobs+", "+noobs2)
	if err != nil {
		t.Fatal(err)
	}
	if got := oh.IngestRatio["uniform"]; got != 505.0/500.0 {
		t.Errorf("merged uniform ratio = %v", got)
	}
	if oh.CachedQueryP50Ratio != 120.0/90.0 {
		t.Errorf("merged query ratio = %v", oh.CachedQueryP50Ratio)
	}
	if _, err := loadObsOverhead(instr+","+noobs, noobs); err == nil {
		t.Error("mixed-flavor instrumented list accepted")
	}
}

// TestLintMode pins the -lint entry point: a valid exposition passes and
// reports its size, a corrupt one fails.
func TestLintMode(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.prom")
	if err := os.WriteFile(good, []byte("# TYPE x_total counter\nx_total 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if err := run([]string{"-lint", good}, &out, &errw); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if !strings.Contains(out.String(), "1 families, 1 samples") {
		t.Fatalf("lint output: %q", out.String())
	}
	bad := filepath.Join(dir, "bad.prom")
	if err := os.WriteFile(bad, []byte("# TYPE x_total counter\nx_total notanumber\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-lint", bad}, &out, &errw); err == nil {
		t.Fatal("corrupt exposition accepted")
	}
}

// TestParseProcs pins the -procs flag grammar.
func TestParseProcs(t *testing.T) {
	got, err := parseProcs(" 1, 4,8 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 8 {
		t.Fatalf("parseProcs: %v, %v", got, err)
	}
	if got, err := parseProcs(""); err != nil || got != nil {
		t.Fatalf("empty: %v, %v", got, err)
	}
	for _, bad := range []string{"0", "-2", "x", "1,,2"} {
		if _, err := parseProcs(bad); err == nil {
			t.Errorf("parseProcs(%q) accepted", bad)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-exp", "fig1", "-sample", "5000", "-trials", "1", "-graphs", "soc-youtube-snap"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 1") || !strings.Contains(out.String(), "soc-youtube-snap") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestRunThroughput(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-exp", "throughput", "-edges", "30000", "-sample", "2000", "-shards", "2"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"uniform/sequential", "uniform/batched", "triangle/parallel-2", "edges/sec"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("throughput output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunServe(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-exp", "serve", "-edges", "20000", "-sample", "2000", "-shards", "2", "-clients", "3"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ingest:", "queries:", "query latency: p50", "p99", "forced-fresh"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("serve output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunChaos runs the full equivalence drill at small scale: the
// faulted life must match the baseline bit for bit, with the recovery
// visible in the rendered report. The experiment self-asserts, so the
// test mostly checks it completes and reports what it promised.
func TestRunChaos(t *testing.T) {
	if !fault.Enabled() {
		fault.Arm(1, nil)
		defer fault.Disarm()
		if !fault.Enabled() {
			t.Skip("fault injection compiled out (gps_nofault)")
		}
	}
	fault.Disarm()
	var out, errw bytes.Buffer
	args := []string{"-exp", "chaos", "-edges", "20000", "-sample", "2000", "-shards", "2"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"BIT-IDENTICAL",
		"engine.shard.drain",
		"serve.ingest.ack",
		"shard restarts 1, lost edges 0, degraded false",
		"checkpoint recovered after fsync fault: true",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("chaos output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-exp", "nope"},
		{"-profile", "huge"},
		{"-exp", "table1", "-graphs", "unknown-graph"},
		{"-exp", "throughput", "-edges", "0"},
		{"-exp", "serve", "-clients", "0"},
		{"-exp", "chaos", "-edges", "1"},
		{"-exp", "chaos", "-json"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}

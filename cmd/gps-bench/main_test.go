package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ca-hollywood-2009", "infra-roadNet-CA", "R-MAT"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-exp", "fig1", "-sample", "5000", "-trials", "1", "-graphs", "soc-youtube-snap"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 1") || !strings.Contains(out.String(), "soc-youtube-snap") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestRunThroughput(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-exp", "throughput", "-edges", "30000", "-sample", "2000", "-shards", "2"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"uniform/sequential", "uniform/batched", "triangle/parallel-2", "edges/sec"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("throughput output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunServe(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-exp", "serve", "-edges", "20000", "-sample", "2000", "-shards", "2", "-clients", "3"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ingest:", "queries:", "query latency: p50", "p99", "forced-fresh"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("serve output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-exp", "nope"},
		{"-profile", "huge"},
		{"-exp", "table1", "-graphs", "unknown-graph"},
		{"-exp", "throughput", "-edges", "0"},
		{"-exp", "serve", "-clients", "0"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}

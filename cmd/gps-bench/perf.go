package main

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"gps"
	"gps/internal/core"
	"gps/internal/engine"
	"gps/internal/experiments"
	"gps/internal/graph"
)

// perfReport is the machine-readable perf snapshot written to
// BENCH_PR3.json by scripts/bench.sh: per-edge update costs, the
// post-stream estimation latency on both the slot-indexed fast path and
// the hash-lookup reference, and the engine snapshot stalls under the
// three dirtiness regimes. Every field is a single number so CI runs can
// be diffed over time.
type perfReport struct {
	Schema    string `json:"schema"`
	Edges     int    `json:"edges"`
	SampleM   int    `json:"m"`
	Shards    int    `json:"shards"`
	Seed      uint64 `json:"seed"`
	GoMaxProc int    `json:"gomaxprocs"`

	// Sampling update paths, nanoseconds per edge over the full stream.
	UpdateNSPerEdge map[string]float64 `json:"update_ns_per_edge"`

	EstimatePost struct {
		SlotMS   float64 `json:"slot_ms"`
		LookupMS float64 `json:"lookup_ms"`
		Speedup  float64 `json:"speedup"`
	} `json:"estimate_post"`

	Snapshot struct {
		// Ingestion-blocked stall (barrier + clone) per dirtiness regime.
		FullStallMS   float64 `json:"full_stall_ms"`
		Dirty1StallMS float64 `json:"dirty1_stall_ms"`
		CleanStallMS  float64 `json:"clean_stall_ms"`
		// Shards cloned in the full vs the 1-dirty snapshot.
		FullCloned   uint64 `json:"full_cloned"`
		Dirty1Cloned uint64 `json:"dirty1_cloned"`
		// dirty1_stall / full_stall: the clone-work fraction of an
		// incremental refresh with 1 of P shards dirty.
		Dirty1OverFull float64 `json:"dirty1_over_full"`
	} `json:"snapshot"`

	// A forced-fresh estimate query: snapshot + Algorithm 2 on the result.
	ForcedFreshMS float64 `json:"forced_fresh_estimate_ms"`

	// Decayed sampling: per-edge cost of the forward-decay update path over
	// the same stream (timestamped by position, half-life = span/10), and
	// the decay accuracy experiment at reduced scale so the trajectory file
	// records NRMSE vs exact decayed counts alongside the perf numbers.
	DecayUpdateNSPerEdge float64                `json:"decay_update_ns_per_edge"`
	DecayAccuracy        []experiments.DecayRow `json:"decay_accuracy"`

	// DecayOverUndecayed is the forward-decay tax on the triangle-weight
	// update path: decay_update_ns_per_edge / update_ns_per_edge[triangle].
	// The decay fast path targets <= 1.5.
	DecayOverUndecayed float64 `json:"decay_over_undecayed"`

	// ProcsSweep (schema v3) is the multi-core ingest trajectory: the
	// sharded engine fed by GOMAXPROCS concurrent producers at each point
	// of the sweep, uniform and forward-decayed. Speedups are relative to
	// the sweep's first (lowest-procs) point.
	ProcsSweep []procsResult `json:"procs_sweep"`

	// ObsOverhead (schema v4) embeds the obs experiment run on both build
	// flavors and their ratios; present only when bench.sh supplied the two
	// files (-obs-instrumented / -obs-noobs). The ingest ratios are the ≤2%
	// instrumentation-overhead bar.
	ObsOverhead *obsOverhead `json:"obs_overhead,omitempty"`

	// Windowed turnstile sampling (schema v5): per-edge cost of feeding a
	// timestamped turnstile stream (inserts + lagged deletions) through the
	// pane-chain engine, the cost of one full-window query on the final
	// state, and the window accuracy experiment at reduced scale so the
	// trajectory records NRMSE vs exact in-window counts alongside the perf
	// numbers.
	WindowUpdateNSPerEdge float64                 `json:"window_update_ns_per_edge"`
	WindowQueryMS         float64                 `json:"window_query_ms"`
	WindowAccuracy        []experiments.WindowRow `json:"window_accuracy"`

	// MultiStream (schema v6) is the multi-tenant serve trajectory: one
	// server hosting 1/4/16 streams over a fixed edge and reservoir budget,
	// concurrent per-stream producers and round-robin cached queries. The
	// N=1 row is the plain single-tenant server; the later rows price the
	// tenancy machinery itself.
	MultiStream []multiStreamResult `json:"multi_stream"`
}

// obsOverhead pairs the instrumented and gps_noobs obs reports with
// instrumented/noobs ratios per measured path (1.00 = free).
type obsOverhead struct {
	Instrumented *obsReport `json:"instrumented"`
	NoObs        *obsReport `json:"noobs"`

	IngestRatio         map[string]float64 `json:"ingest_ratio"`
	CachedQueryP50Ratio float64            `json:"cached_query_p50_ratio"`
}

// procsResult is one point of the GOMAXPROCS sweep: the sharded engine's
// concurrent-producer ingest rate with that many procs (and as many
// producer goroutines), measured over the same stream as the sequential
// paths above.
type procsResult struct {
	GoMaxProcs int `json:"gomaxprocs"`
	Producers  int `json:"producers"`

	UniformNSPerEdge   float64 `json:"parallel_uniform_ns_per_edge"`
	UniformEdgesPerSec float64 `json:"parallel_uniform_edges_per_sec"`
	UniformSpeedup     float64 `json:"uniform_speedup_vs_first"`

	DecayNSPerEdge float64 `json:"parallel_decay_ns_per_edge"`
	DecaySpeedup   float64 `json:"decay_speedup_vs_first"`

	// Cumulative producer stalls on the shard rings during the uniform +
	// decayed runs at this point (full rings → producers waited).
	RouterStalls uint64 `json:"router_stalls"`
}

// timeBest runs fn reps times and returns the fastest wall time — the
// standard way to suppress scheduler noise in a one-shot benchmark.
func timeBest(reps int, fn func()) time.Duration {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		el := time.Since(start)
		if best == 0 || el < best {
			best = el
		}
	}
	return best
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// perfBench builds the perf report on a synthetic R-MAT stream. procs is
// the GOMAXPROCS sweep for the concurrent-ingest trajectory (empty skips
// the sweep).
func perfBench(edges, sample, shards int, seed uint64, procs []int) (*perfReport, error) {
	if edges < 1 || sample < 1 || shards < 1 {
		return nil, fmt.Errorf("perf: need positive -edges, -sample and -shards")
	}
	es, _ := rmatStream(edges, seed)
	edges = len(es)
	r := &perfReport{
		Schema:          "gps-bench/perf/v6",
		Edges:           edges,
		SampleM:         sample,
		Shards:          shards,
		Seed:            seed,
		GoMaxProc:       runtime.GOMAXPROCS(0),
		UpdateNSPerEdge: map[string]float64{},
	}

	// Update paths: full-stream sequential sampling per weight, plus the
	// in-stream estimator (Algorithm 3's combined estimate+update cost).
	nsPerEdge := func(run func() error) (float64, error) {
		start := time.Now()
		if err := run(); err != nil {
			return 0, err
		}
		return float64(time.Since(start).Nanoseconds()) / float64(edges), nil
	}
	for _, v := range []struct {
		name   string
		weight gps.WeightFunc
	}{{"uniform", gps.UniformWeight}, {"triangle", gps.TriangleWeight}, {"adjacency", gps.AdjacencyWeight}} {
		n, err := nsPerEdge(func() error {
			s, err := gps.NewSampler(gps.Config{Capacity: sample, Weight: v.weight, Seed: seed})
			if err != nil {
				return err
			}
			s.ProcessBatch(es)
			return nil
		})
		if err != nil {
			return nil, err
		}
		r.UpdateNSPerEdge[v.name] = n
	}
	n, err := nsPerEdge(func() error {
		in, err := gps.NewInStream(gps.Config{Capacity: sample, Weight: gps.TriangleWeight, Seed: seed})
		if err != nil {
			return err
		}
		for _, e := range es {
			in.Process(e)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.UpdateNSPerEdge["instream_triangle"] = n

	// Post-stream estimation at m=sample: slot-indexed fast path vs the
	// retained hash-lookup reference, same sampler state.
	est, err := gps.NewSampler(gps.Config{Capacity: sample, Weight: gps.TriangleWeight, Seed: seed})
	if err != nil {
		return nil, err
	}
	est.ProcessBatch(es)
	slotT := timeBest(3, func() { core.EstimatePost(est) })
	lookT := timeBest(3, func() { core.EstimatePostLookup(est) })
	r.EstimatePost.SlotMS = ms(slotT)
	r.EstimatePost.LookupMS = ms(lookT)
	if slotT > 0 {
		r.EstimatePost.Speedup = float64(lookT) / float64(slotT)
	}

	// Snapshot stalls: full (first snapshot, all shards dirty), clean
	// (nothing ingested since), and 1-of-P dirty (traffic confined to one
	// shard). Stall is the ingestion-blocked window reported by the engine,
	// not the merge that follows it.
	p, err := gps.NewParallel(gps.Config{Capacity: sample, Seed: seed}, shards)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	p.ProcessBatch(es)
	if _, err := p.Snapshot(); err != nil {
		return nil, err
	}
	_, cloned0, _ := p.SnapshotStats()
	r.Snapshot.FullStallMS = ms(p.LastSnapshotStall())
	r.Snapshot.FullCloned = cloned0

	if _, err := p.Snapshot(); err != nil {
		return nil, err
	}
	r.Snapshot.CleanStallMS = ms(p.LastSnapshotStall())

	var targeted []graph.Edge
	for _, e := range es {
		if p.ShardOf(e) == 0 {
			targeted = append(targeted, e)
			if len(targeted) == 20000 {
				break
			}
		}
	}
	p.ProcessBatch(targeted) // duplicates: dirties shard 0 only
	_, clonedBefore, _ := p.SnapshotStats()
	if _, err := p.Snapshot(); err != nil {
		return nil, err
	}
	_, clonedAfter, _ := p.SnapshotStats()
	r.Snapshot.Dirty1StallMS = ms(p.LastSnapshotStall())
	r.Snapshot.Dirty1Cloned = clonedAfter - clonedBefore
	if r.Snapshot.FullStallMS > 0 {
		r.Snapshot.Dirty1OverFull = r.Snapshot.Dirty1StallMS / r.Snapshot.FullStallMS
	}

	// Forced-fresh query: what a ?max_stale=0 estimate costs end to end
	// (minus HTTP) — snapshot plus Algorithm 2 over the merged sampler.
	forced := timeBest(2, func() {
		snap, err := p.Snapshot()
		if err == nil {
			core.EstimatePost(snap)
		}
	})
	r.ForcedFreshMS = ms(forced)

	// Forward-decay update path: the same stream stamped by position, with
	// triangle weights and half-life span/10 (≈ the last tenth "warm").
	timed := make([]graph.Edge, len(es))
	for i, e := range es {
		timed[i] = e.At(uint64(i + 1))
	}
	n, err = nsPerEdge(func() error {
		s, err := gps.NewSampler(gps.Config{
			Capacity: sample, Weight: gps.TriangleWeight, Seed: seed,
			Decay: gps.Decay{HalfLife: float64(len(timed)) / 10},
		})
		if err != nil {
			return err
		}
		s.ProcessBatch(timed)
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.DecayUpdateNSPerEdge = n
	if tri := r.UpdateNSPerEdge["triangle"]; tri > 0 {
		r.DecayOverUndecayed = n / tri
	}

	// Multi-core trajectory: concurrent producers into the sharded engine
	// at each GOMAXPROCS point, uniform and decayed.
	sweep, err := procsSweep(es, timed, sample, shards, seed, procs)
	if err != nil {
		return nil, err
	}
	r.ProcsSweep = sweep

	// Decay accuracy at reduced scale: enough to track the NRMSE trajectory
	// without dominating the bench run.
	rows, err := experiments.DecayAccuracy(
		experiments.Options{Trials: 2, Seed: seed},
		experiments.DecayConfig{Nodes: 10000, HalfLifeFracs: []float64{0.1},
			SampleSizes: []int{4000}, Shards: shards})
	if err != nil {
		return nil, err
	}
	r.DecayAccuracy = rows

	// Windowed turnstile path: the timestamped stream with a lagged deletion
	// every 8th record, through the pane chain (window span/4, pane
	// span/16), plus the cost of one full-window merge-and-estimate query on
	// the final state.
	lag := len(timed) / 5
	turn := make([]graph.Edge, 0, len(timed)+len(timed)/8)
	for i, e := range timed {
		turn = append(turn, e)
		if i%8 == 3 && i >= lag {
			turn = append(turn, timed[i-lag].At(e.TS).AsDeletion())
		}
	}
	span := uint64(len(timed))
	w, err := engine.NewWindowed(engine.WindowConfig{
		Capacity: sample, Seed: seed, Shards: shards,
		PaneWidth: max(span/16, 1), Window: max(span/4, 1),
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := w.ProcessBatch(turn); err != nil {
		w.Close()
		return nil, err
	}
	r.WindowUpdateNSPerEdge = float64(time.Since(start).Nanoseconds()) / float64(len(turn))
	qStart := time.Now()
	if _, err := w.Query(0); err != nil {
		w.Close()
		return nil, err
	}
	r.WindowQueryMS = ms(time.Since(qStart))
	w.Close()

	// Window accuracy at reduced scale, mirroring the decay trajectory rows.
	wrows, err := experiments.WindowAccuracy(
		experiments.Options{Trials: 2, Seed: seed},
		experiments.WindowConfig{Nodes: 10000, WindowFracs: []float64{0.25},
			SampleSizes: []int{4000}, Shards: shards})
	if err != nil {
		return nil, err
	}
	r.WindowAccuracy = wrows

	// Multi-tenant serve trajectory at 1/4/16 streams over a capped stream
	// (the serve path is m- and HTTP-bound, so the full edge budget would
	// only stretch the run without moving the per-edge numbers).
	msample := sample
	if msample > 20000 {
		msample = 20000
	}
	mrows, err := multiStreamBench(es, msample, shards, seed, []int{1, 4, 16})
	if err != nil {
		return nil, err
	}
	r.MultiStream = mrows
	return r, nil
}

// procsSweep measures concurrent-producer ingest through the sharded
// engine at each GOMAXPROCS point, restoring the ambient setting when done.
// Producer count tracks the procs point: the sweep answers "what does this
// engine sustain when the host actually has N cores to offer".
func procsSweep(es, timed []graph.Edge, sample, shards int, seed uint64, procs []int) ([]procsResult, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	halfLife := float64(len(timed)) / 10
	var out []procsResult
	for _, np := range procs {
		if np < 1 {
			return nil, fmt.Errorf("perf: -procs entries must be positive, got %d", np)
		}
		runtime.GOMAXPROCS(np)
		uni, uniStalls, err := bestIngest(es, gps.Config{Capacity: sample, Seed: seed}, shards, np)
		if err != nil {
			return nil, err
		}
		dec, decStalls, err := bestIngest(timed, gps.Config{
			Capacity: sample, Seed: seed, Decay: gps.Decay{HalfLife: halfLife},
		}, shards, np)
		if err != nil {
			return nil, err
		}
		pr := procsResult{
			GoMaxProcs:         np,
			Producers:          np,
			UniformNSPerEdge:   uni,
			UniformEdgesPerSec: 1e9 / uni,
			UniformSpeedup:     1,
			DecayNSPerEdge:     dec,
			DecaySpeedup:       1,
			RouterStalls:       uniStalls + decStalls,
		}
		if len(out) > 0 {
			pr.UniformSpeedup = out[0].UniformNSPerEdge / uni
			pr.DecaySpeedup = out[0].DecayNSPerEdge / dec
		}
		out = append(out, pr)
	}
	return out, nil
}

// bestIngest runs ingestParallel twice and keeps the faster wall time (and
// that run's stalls), the usual noise-suppression for one-shot benches.
func bestIngest(es []graph.Edge, cfg gps.Config, shards, producers int) (float64, uint64, error) {
	best, bestStalls := 0.0, uint64(0)
	for rep := 0; rep < 2; rep++ {
		ns, stalls, err := ingestParallel(es, cfg, shards, producers)
		if err != nil {
			return 0, 0, err
		}
		if best == 0 || ns < best {
			best, bestStalls = ns, stalls
		}
	}
	return best, bestStalls, nil
}

// ingestParallel feeds the stream to a fresh sharded engine from the given
// number of concurrent producers (contiguous stripes, 8192-edge batches)
// and returns the wall ns/edge of ingest-through-drain plus the router
// stalls (full-ring producer waits) the run accumulated.
func ingestParallel(es []graph.Edge, cfg gps.Config, shards, producers int) (float64, uint64, error) {
	p, err := gps.NewParallel(cfg, shards)
	if err != nil {
		return 0, 0, err
	}
	defer p.Close()
	stripe := (len(es) + producers - 1) / producers
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		lo := i * stripe
		if lo >= len(es) {
			break
		}
		hi := lo + stripe
		if hi > len(es) {
			hi = len(es)
		}
		wg.Add(1)
		go func(part []graph.Edge) {
			defer wg.Done()
			for o := 0; o < len(part); o += 8192 {
				h := o + 8192
				if h > len(part) {
					h = len(part)
				}
				p.ProcessBatch(part[o:h])
			}
		}(es[lo:hi])
	}
	wg.Wait()
	p.Arrivals() // barrier: the drain is part of the measured window
	el := time.Since(start)
	return float64(el.Nanoseconds()) / float64(len(es)), p.RingStats().Stalls, nil
}

// renderPerf is the human-readable form of the report.
func renderPerf(r *perfReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream: %d edges; m=%d, P=%d shards, GOMAXPROCS=%d\n\n", r.Edges, r.SampleM, r.Shards, r.GoMaxProc)
	fmt.Fprintf(&b, "update paths (ns/edge):\n")
	for _, k := range []string{"uniform", "triangle", "adjacency", "instream_triangle"} {
		fmt.Fprintf(&b, "  %-20s %8.0f\n", k, r.UpdateNSPerEdge[k])
	}
	fmt.Fprintf(&b, "\nEstimatePost at m=%d: slot-indexed %.1fms, hash-lookup %.1fms  (%.2fx)\n",
		r.SampleM, r.EstimatePost.SlotMS, r.EstimatePost.LookupMS, r.EstimatePost.Speedup)
	fmt.Fprintf(&b, "snapshot stall: full %.2fms (%d clones)   1-dirty %.2fms (%d clone, %.2fx of full)   clean %.2fms\n",
		r.Snapshot.FullStallMS, r.Snapshot.FullCloned,
		r.Snapshot.Dirty1StallMS, r.Snapshot.Dirty1Cloned, r.Snapshot.Dirty1OverFull,
		r.Snapshot.CleanStallMS)
	fmt.Fprintf(&b, "forced-fresh estimate (snapshot + Alg 2): %.1fms\n", r.ForcedFreshMS)
	fmt.Fprintf(&b, "decayed update path (triangle weight, half-life span/10): %.0f ns/edge  (%.2fx undecayed)\n",
		r.DecayUpdateNSPerEdge, r.DecayOverUndecayed)
	if len(r.ProcsSweep) > 0 {
		fmt.Fprintf(&b, "\nmulti-core ingest (P=%d shards, concurrent producers = procs):\n", r.Shards)
		fmt.Fprintf(&b, "  %-6s %-5s %14s %12s %14s %12s %8s\n",
			"procs", "prod", "uniform ns/e", "speedup", "decayed ns/e", "speedup", "stalls")
		for _, pr := range r.ProcsSweep {
			fmt.Fprintf(&b, "  %-6d %-5d %14.0f %11.2fx %14.0f %11.2fx %8d\n",
				pr.GoMaxProcs, pr.Producers, pr.UniformNSPerEdge, pr.UniformSpeedup,
				pr.DecayNSPerEdge, pr.DecaySpeedup, pr.RouterStalls)
		}
	}
	for _, row := range r.DecayAccuracy {
		fmt.Fprintf(&b, "decay accuracy: half-life %.2f·span m=%d %-18s NRMSE %.4f\n",
			row.HalfLifeFrac, row.M, row.Motif, row.NRMSE)
	}
	fmt.Fprintf(&b, "windowed turnstile ingest (pane chain, window span/4): %.0f ns/edge; full-window query %.1fms\n",
		r.WindowUpdateNSPerEdge, r.WindowQueryMS)
	for _, row := range r.WindowAccuracy {
		fmt.Fprintf(&b, "window accuracy: window %.2f·span m=%d %-10s NRMSE %.4f\n",
			row.WindowFrac, row.M, row.Motif, row.NRMSE)
	}
	if len(r.MultiStream) > 0 {
		fmt.Fprintf(&b, "\nmulti-tenant serve (fixed edge/reservoir budget split across streams):\n")
		fmt.Fprintf(&b, "  %-8s %14s %18s %18s\n", "streams", "ingest ns/e", "cached q p50 µs", "p99 µs")
		for _, row := range r.MultiStream {
			fmt.Fprintf(&b, "  %-8d %14.0f %18.0f %18.0f\n",
				row.Streams, row.IngestNSPerEdge, row.CachedQueryP50US, row.CachedQueryP99US)
		}
	}
	if oh := r.ObsOverhead; oh != nil {
		fmt.Fprintf(&b, "\nobservability overhead (instrumented / gps_noobs):\n")
		for _, k := range []string{"uniform", "triangle", "decayed"} {
			fmt.Fprintf(&b, "  ingest %-10s %6.0f / %6.0f ns/edge  = %.3fx\n",
				k, oh.Instrumented.IngestNSPerEdge[k], oh.NoObs.IngestNSPerEdge[k], oh.IngestRatio[k])
		}
		fmt.Fprintf(&b, "  cached query p50  %6.0f / %6.0f µs       = %.3fx\n",
			oh.Instrumented.CachedQueryP50US, oh.NoObs.CachedQueryP50US, oh.CachedQueryP50Ratio)
	}
	return b.String()
}

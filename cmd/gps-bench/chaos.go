package main

// The chaos experiment: the fault-injection equivalence drill behind the
// robustness claims. It runs the same deterministic R-MAT stream through
// two in-process gps-serve instances — one fault-free, one under an
// injected failure schedule (transient 503s, lost ingest acks, a fsync
// error during checkpointing, and a shard panic mid-drain) — driving both
// through the at-least-once client. The claim under test: the faulted run
// converges to the *bit-identical* estimate, with the recovery visible in
// the health counters rather than in the answers.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"gps"
	"gps/internal/client"
	"gps/internal/fault"
	"gps/internal/graph"
	"gps/internal/serve"
)

// chaosReport is the experiment's outcome, rendered for humans below.
type chaosReport struct {
	Edges        int
	Baseline     client.Estimate
	Faulted      client.Estimate
	Injected     []fault.PointStatus
	Stats        serve.StatsV1
	Attempts     int // total request attempts across the faulted run
	Requests     int // logical client operations in the faulted run
	CheckpointOK bool
}

// chaosBench runs the drill and fails loudly on any divergence: the
// experiment *is* the assertion, so a green run certifies the recovery
// invariants on this build.
func chaosBench(edges, sample, shards int, seed uint64) (string, error) {
	if edges < 2 || sample < 1 || shards < 1 {
		return "", fmt.Errorf("chaos: need -edges >= 2 and positive -sample, -shards")
	}
	es, _ := rmatStream(edges, seed)
	edges = len(es)
	cfg := func() serve.Config {
		return serve.Config{
			Capacity:     sample,
			Weight:       gps.TriangleWeight,
			WeightName:   "triangle",
			Seed:         seed,
			Shards:       shards,
			QueueDepth:   64,
			MaxStaleness: 100 * time.Millisecond,
		}
	}

	// Life 1: fault-free baseline.
	base, err := chaosRun(cfg(), es, seed)
	if err != nil {
		return "", fmt.Errorf("chaos: baseline run: %w", err)
	}

	// Life 2: the same stream under the failure schedule.
	rep, err := chaosFaultedRun(cfg(), es, seed)
	if err != nil {
		return "", fmt.Errorf("chaos: faulted run: %w", err)
	}
	rep.Edges = edges
	rep.Baseline = base.est

	// Equivalence: the faulted life must answer bit-for-bit the same.
	if err := chaosEquivalent(rep.Baseline, rep.Faulted); err != nil {
		return "", fmt.Errorf("chaos: FAULTED RUN DIVERGED: %w", err)
	}
	// Recovery must be visible — and lossless.
	if rep.Stats.ShardRestarts < 1 {
		return "", fmt.Errorf("chaos: shard panic did not surface a supervisor restart")
	}
	if rep.Stats.Degraded || rep.Stats.LostEdges != 0 {
		return "", fmt.Errorf("chaos: recovery was lossy (degraded=%v lost=%d) — clone+replay should be exact here",
			rep.Stats.Degraded, rep.Stats.LostEdges)
	}
	if rep.Stats.DuplicateBatches < 1 {
		return "", fmt.Errorf("chaos: lost-ack retries were not deduplicated (duplicate_batches=0)")
	}
	if rep.Attempts <= rep.Requests {
		return "", fmt.Errorf("chaos: no retries observed (%d attempts for %d requests) — faults did not fire",
			rep.Attempts, rep.Requests)
	}
	if !rep.CheckpointOK {
		return "", fmt.Errorf("chaos: checkpoint did not recover after the injected fsync fault")
	}
	return renderChaos(rep), nil
}

// chaosLife is one server lifetime driven through the ingest client.
type chaosLife struct {
	srv *serve.Server
	ts  *httptest.Server
	cl  *client.Client
	est client.Estimate
}

func newChaosLife(cfg serve.Config, seed uint64) (*chaosLife, error) {
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	cl, err := client.New(client.Config{
		BaseURL:     ts.URL,
		Source:      "chaos",
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		MaxAttempts: 8,
		Seed:        seed ^ 0xC4A05,
	})
	if err != nil {
		ts.Close()
		srv.Close()
		return nil, err
	}
	return &chaosLife{srv: srv, ts: ts, cl: cl}, nil
}

func (l *chaosLife) close() {
	l.ts.Close()
	l.srv.Close()
}

// ingest pushes a slice of the stream in client batches, returning the
// total attempts the acknowledgements took.
func (l *chaosLife) ingest(edges []graph.Edge, batch int) (attempts, requests int, err error) {
	for lo := 0; lo < len(edges); lo += batch {
		hi := min(lo+batch, len(edges))
		res, err := l.cl.Ingest(context.Background(), edges[lo:hi])
		if err != nil {
			return attempts, requests, fmt.Errorf("ingest [%d:%d): %w", lo, hi, err)
		}
		attempts += res.Attempts
		requests++
	}
	return attempts, requests, nil
}

// settle flushes and takes a forced-fresh estimate — the read-your-writes
// barrier both lives synchronize on.
func (l *chaosLife) settle() (attempts int, err error) {
	if err := l.cl.Flush(context.Background()); err != nil {
		return 0, fmt.Errorf("flush: %w", err)
	}
	est, err := l.cl.Estimate(context.Background(), 0)
	if err != nil {
		return 0, fmt.Errorf("estimate: %w", err)
	}
	l.est = est
	return 2, nil
}

// chaosRun is one complete fault-free life over the stream.
func chaosRun(cfg serve.Config, es []graph.Edge, seed uint64) (*chaosLife, error) {
	l, err := newChaosLife(cfg, seed)
	if err != nil {
		return nil, err
	}
	defer l.close()
	if _, _, err := l.ingest(es, chaosBatch); err != nil {
		return nil, err
	}
	if _, err := l.settle(); err != nil {
		return nil, err
	}
	return l, nil
}

const chaosBatch = 4096

// chaosFaultedRun replays the stream under the failure schedule, in three
// acts so the shard panic lands with a fresh clone behind it (making the
// supervisor's ring replay provably exact, not merely best-effort):
//
//  1. First half under transient route 503s and lost ingest acks — the
//     client retries through both; the server deduplicates the re-sent
//     sequence numbers.
//  2. A checkpoint attempt under an injected fsync error (503, no torn
//     file), retried clean after the schedule clears.
//  3. Second half opening with a shard panic mid-drain; the supervisor
//     restores the panicked shard from its clone and replays the ring
//     backlog.
func chaosFaultedRun(cfg serve.Config, es []graph.Edge, seed uint64) (chaosReport, error) {
	var rep chaosReport
	ckptDir, err := os.MkdirTemp("", "gps-chaos-ckpt-")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(ckptDir)
	cfg.CheckpointDir = ckptDir

	l, err := newChaosLife(cfg, seed+1)
	if err != nil {
		return rep, err
	}
	defer l.close()
	defer fault.Disarm()

	arm := func(spec string) error {
		rules, err := fault.ParseSpec(spec)
		if err != nil {
			return err
		}
		fault.Arm(seed, rules)
		return nil
	}
	collect := func() {
		rep.Injected = append(rep.Injected, fault.Status()...)
	}
	half := len(es) / 2

	// Act 1: transient 503s + lost acks over the first half.
	if err := arm("serve.http:error:times=2,msg=chaos transient;serve.ingest.ack:error:times=2,msg=chaos lost ack"); err != nil {
		return rep, err
	}
	a, r, err := l.ingest(es[:half], chaosBatch)
	rep.Attempts += a
	rep.Requests += r
	if err != nil {
		return rep, err
	}
	a, err = l.settle() // snapshot: clones now cover everything drained
	rep.Attempts += a
	rep.Requests += 2
	if err != nil {
		return rep, err
	}
	collect()

	// Act 2: checkpoint under an injected fsync error — must refuse with a
	// transient class and leave no torn file, then succeed once clear.
	if err := arm("checkpoint.fsync:error:times=1,msg=chaos fsync"); err != nil {
		return rep, err
	}
	if status, err := chaosPost(l.ts.URL + "/v1/checkpoint"); err != nil {
		return rep, err
	} else if status != http.StatusServiceUnavailable {
		return rep, fmt.Errorf("checkpoint under fsync fault: status %d, want 503", status)
	}
	collect()
	fault.Disarm()
	if status, err := chaosPost(l.ts.URL + "/v1/checkpoint"); err != nil {
		return rep, err
	} else if status == http.StatusOK {
		rep.CheckpointOK = true
	}

	// Act 3: the shard panic. The first span drained after arming panics;
	// the supervisor restores from the act-1 clone and replays the ring.
	if err := arm("engine.shard.drain:panic:times=1,msg=chaos shard panic"); err != nil {
		return rep, err
	}
	a, r, err = l.ingest(es[half:], chaosBatch)
	rep.Attempts += a
	rep.Requests += r
	if err != nil {
		return rep, err
	}
	a, err = l.settle()
	rep.Attempts += a
	rep.Requests += 2
	if err != nil {
		return rep, err
	}
	collect()
	fault.Disarm()

	rep.Faulted = l.est
	rep.Stats, err = chaosStats(l.ts.URL)
	return rep, err
}

func chaosPost(url string) (int, error) {
	resp, err := http.Post(url, "", nil)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func chaosStats(base string) (serve.StatsV1, error) {
	var st serve.StatsV1
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(body, &st)
}

// chaosEquivalent demands bit-identical estimates between the lives.
func chaosEquivalent(a, b client.Estimate) error {
	switch {
	case a.Arrivals != b.Arrivals:
		return fmt.Errorf("arrivals %d vs %d", a.Arrivals, b.Arrivals)
	case a.SampledEdges != b.SampledEdges:
		return fmt.Errorf("sampled edges %d vs %d", a.SampledEdges, b.SampledEdges)
	case a.Threshold != b.Threshold:
		return fmt.Errorf("threshold %v vs %v", a.Threshold, b.Threshold)
	case a.Triangles != b.Triangles:
		return fmt.Errorf("triangles %v vs %v", a.Triangles, b.Triangles)
	case a.Wedges != b.Wedges:
		return fmt.Errorf("wedges %v vs %v", a.Wedges, b.Wedges)
	case b.Degraded:
		return fmt.Errorf("faulted run answered degraded despite exact recovery")
	}
	return nil
}

func renderChaos(rep chaosReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream: %d edges, two lives (fault-free vs injected schedule), at-least-once client\n\n", rep.Edges)
	fmt.Fprintf(&b, "%-14s %14s %14s\n", "", "baseline", "faulted")
	row := func(name string, a, c any) { fmt.Fprintf(&b, "%-14s %14v %14v\n", name, a, c) }
	row("arrivals", rep.Baseline.Arrivals, rep.Faulted.Arrivals)
	row("sampled", rep.Baseline.SampledEdges, rep.Faulted.SampledEdges)
	row("triangles", fmt.Sprintf("%.1f", rep.Baseline.Triangles), fmt.Sprintf("%.1f", rep.Faulted.Triangles))
	row("wedges", fmt.Sprintf("%.1f", rep.Baseline.Wedges), fmt.Sprintf("%.1f", rep.Faulted.Wedges))
	row("threshold", fmt.Sprintf("%.6g", rep.Baseline.Threshold), fmt.Sprintf("%.6g", rep.Faulted.Threshold))
	b.WriteString("estimates: BIT-IDENTICAL\n\n")
	fmt.Fprintf(&b, "injected faults fired:\n")
	for _, ps := range rep.Injected {
		fmt.Fprintf(&b, "  %-24s %-8s fired %d/%d hits\n", ps.Point, ps.Kind, ps.Fired, ps.Hits)
	}
	fmt.Fprintf(&b, "\nfaulted-run health: shard restarts %d, lost edges %d, degraded %v\n",
		rep.Stats.ShardRestarts, rep.Stats.LostEdges, rep.Stats.Degraded)
	fmt.Fprintf(&b, "client: %d logical requests took %d attempts (retries absorbed every injected failure)\n",
		rep.Requests, rep.Attempts)
	fmt.Fprintf(&b, "dedup: %d lost-ack retries answered duplicate; checkpoint recovered after fsync fault: %v\n",
		rep.Stats.DuplicateBatches, rep.CheckpointOK)
	return b.String()
}

// Command gps-gen generates synthetic graphs as plain-text edge lists,
// either by dataset name (the paper stand-ins) or by generator family with
// explicit parameters.
//
// Usage:
//
//	gps-gen -dataset soc-orkut [-profile small|full] [-out file] [-format text|binary]
//	        [-timestamps none|seq|poisson] [-rate R]
//	gps-gen -type er   -n 100000 -m 500000 [-seed S] [-out file]
//	gps-gen -type ba   -n 100000 -k 5
//	gps-gen -type hk   -n 100000 -k 8 -p 0.6
//	gps-gen -type ws   -n 100000 -k 8 -p 0.05
//	gps-gen -type rmat -scale 18 -k 8 -a 0.57 -b 0.19 -c 0.19
//	gps-gen -type grid -rows 500 -cols 500 -keep 0.75 -diag 0.03
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gps/internal/datasets"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/randx"
	"gps/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "gps-gen: %v\n", err)
		os.Exit(1)
	}
}

// run parses args and writes the generated edge list to stdout (or -out).
// Progress notes go to errw.
func run(args []string, stdout, errw io.Writer) error {
	fs := flag.NewFlagSet("gps-gen", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		dataset     = fs.String("dataset", "", "generate a named paper stand-in (see gps-bench -list)")
		profileName = fs.String("profile", "small", "dataset scale: small or full")
		typ         = fs.String("type", "", "generator family: er, ba, hk, ws, rmat, grid")
		n           = fs.Int("n", 10000, "number of nodes (er, ba, hk, ws)")
		m           = fs.Int("m", 50000, "number of edges (er)")
		k           = fs.Int("k", 5, "edges per node (ba, hk, ws) or edge factor (rmat)")
		p           = fs.Float64("p", 0.5, "triad probability (hk) or rewiring beta (ws)")
		scale       = fs.Int("scale", 16, "log2 node count (rmat)")
		a           = fs.Float64("a", 0.57, "R-MAT a")
		bProb       = fs.Float64("b", 0.19, "R-MAT b")
		cProb       = fs.Float64("c", 0.19, "R-MAT c")
		rows        = fs.Int("rows", 300, "grid rows")
		cols        = fs.Int("cols", 300, "grid cols")
		keep        = fs.Float64("keep", 0.75, "grid edge keep probability")
		diag        = fs.Float64("diag", 0.03, "grid diagonal probability")
		seed        = fs.Uint64("seed", 1, "generator seed")
		out         = fs.String("out", "", "output file (default stdout)")
		format      = fs.String("format", "text", "output format: text (\"u v\" lines) or binary (GPSB varint frames)")
		timestamps  = fs.String("timestamps", "none", "stamp event times onto the edges: none, seq (1,2,3,…) or poisson (integer Poisson-process arrival times)")
		rate        = fs.Float64("rate", 1, "mean edges per time unit for -timestamps poisson")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	write := stream.WriteEdgeList
	switch *format {
	case "text":
	case "binary":
		write = stream.WriteBinary
	default:
		return fmt.Errorf("unknown format %q (want text or binary)", *format)
	}

	edges, err := buildEdges(*dataset, *profileName, *typ, genParams{
		n: *n, m: *m, k: *k, p: *p, scale: *scale,
		a: *a, b: *bProb, c: *cProb,
		rows: *rows, cols: *cols, keep: *keep, diag: *diag,
		seed: *seed,
	})
	if err != nil {
		return err
	}
	if err := stampTimestamps(edges, *timestamps, *rate, *seed); err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := write(w, edges); err != nil {
		return fmt.Errorf("write: %v", err)
	}
	fmt.Fprintf(errw, "gps-gen: wrote %d edges\n", len(edges))
	return nil
}

// stampTimestamps assigns event times to the generated edges in stream
// order: "seq" stamps the position (1,2,3,…), "poisson" a Poisson process
// with on average `rate` edges per time unit (exponential inter-arrival
// gaps, truncated to whole units — the same unit -half-life is measured
// in, so a stream of N edges spans ~N/rate units and close arrivals share
// a unit). Both forms are non-decreasing, as the GPSB v2 delta framing
// requires.
func stampTimestamps(edges []graph.Edge, mode string, rate float64, seed uint64) error {
	switch mode {
	case "none", "":
		return nil
	case "seq":
		for i := range edges {
			edges[i].TS = uint64(i + 1)
		}
		return nil
	case "poisson":
		if rate <= 0 {
			return fmt.Errorf("-timestamps poisson needs -rate > 0, got %v", rate)
		}
		rng := randx.New(seed ^ 0x715)
		t := 0.0
		for i := range edges {
			t += rng.Exp() / rate
			edges[i].TS = 1 + uint64(t)
		}
		return nil
	}
	return fmt.Errorf("unknown -timestamps mode %q (want none, seq or poisson)", mode)
}

type genParams struct {
	n, m, k    int
	p          float64
	scale      int
	a, b, c    float64
	rows, cols int
	keep, diag float64
	seed       uint64
}

// buildEdges dispatches to a named dataset or a generator family.
func buildEdges(dataset, profileName, typ string, gp genParams) ([]graph.Edge, error) {
	switch {
	case dataset != "":
		d, err := datasets.Get(dataset)
		if err != nil {
			return nil, err
		}
		profile := datasets.Small
		switch profileName {
		case "small":
		case "full":
			profile = datasets.Full
		default:
			return nil, fmt.Errorf("unknown profile %q (want small or full)", profileName)
		}
		return d.Edges(profile), nil
	case typ != "":
		switch typ {
		case "er":
			return gen.ErdosRenyi(gp.n, gp.m, gp.seed), nil
		case "ba":
			return gen.BarabasiAlbert(gp.n, gp.k, gp.seed), nil
		case "hk":
			return gen.HolmeKim(gp.n, gp.k, gp.p, gp.seed), nil
		case "ws":
			return gen.WattsStrogatz(gp.n, gp.k, gp.p, gp.seed), nil
		case "rmat":
			return gen.RMAT(gp.scale, gp.k, gp.a, gp.b, gp.c, gp.seed), nil
		case "grid":
			return gen.RoadGrid(gp.rows, gp.cols, gp.keep, gp.diag, gp.seed), nil
		}
		return nil, fmt.Errorf("unknown generator type %q", typ)
	}
	return nil, fmt.Errorf("pass -dataset or -type (see -help)")
}

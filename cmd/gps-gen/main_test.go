package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"gps/internal/stream"
)

func TestRunGeneratorFamilies(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"er", []string{"-type", "er", "-n", "100", "-m", "300"}},
		{"ba", []string{"-type", "ba", "-n", "100", "-k", "3"}},
		{"hk", []string{"-type", "hk", "-n", "100", "-k", "3", "-p", "0.5"}},
		{"ws", []string{"-type", "ws", "-n", "100", "-k", "4", "-p", "0.1"}},
		{"rmat", []string{"-type", "rmat", "-scale", "8", "-k", "4"}},
		{"grid", []string{"-type", "grid", "-rows", "10", "-cols", "10"}},
	}
	for _, c := range cases {
		var out, errw bytes.Buffer
		if err := run(c.args, &out, &errw); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		edges, err := stream.ReadEdgeList(&out)
		if err != nil {
			t.Fatalf("%s: parse back: %v", c.name, err)
		}
		if len(edges) == 0 {
			t.Fatalf("%s: no edges", c.name)
		}
		if !strings.Contains(errw.String(), "wrote") {
			t.Fatalf("%s: missing progress note: %q", c.name, errw.String())
		}
	}
}

func TestRunDataset(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-dataset", "com-amazon"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	edges, err := stream.ReadEdgeList(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) < 30000 {
		t.Fatalf("com-amazon produced %d edges", len(edges))
	}
}

// TestRunBinaryFormat checks -format binary emits the GPSB framing and
// that it decodes to exactly the edges of the equivalent text run.
func TestRunBinaryFormat(t *testing.T) {
	args := []string{"-type", "er", "-n", "100", "-m", "300", "-seed", "9"}
	var text, bin, errw bytes.Buffer
	if err := run(args, &text, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-format", "binary"), &bin, &errw); err != nil {
		t.Fatal(err)
	}
	want, err := stream.ReadEdgeList(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.ReadBinary(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("binary decoded %d edges, text %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: binary %v vs text %v", i, got[i], want[i])
		}
	}
	if bin.Len() >= text.Len() {
		t.Errorf("binary output (%dB) not smaller than text (%dB)", bin.Len(), text.Len())
	}
}

func TestRunOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	var out, errw bytes.Buffer
	if err := run([]string{"-type", "er", "-n", "50", "-m", "100", "-out", path}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("wrote to stdout despite -out")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                   // neither -dataset nor -type
		{"-type", "nope"},    // unknown family
		{"-dataset", "nope"}, // unknown dataset
		{"-dataset", "com-amazon", "-profile", "huge"}, // bad profile
		{"-type", "er", "-n", "10", "-format", "nope"}, // bad format
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gps/internal/gen"
	"gps/internal/stream"
)

func writeGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := stream.WriteEdgeList(f, gen.HolmeKim(500, 4, 0.6, 3)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBasic(t *testing.T) {
	path := writeGraph(t)
	var out, errw bytes.Buffer
	if err := run([]string{"-in", path, "-m", "400", "-exact"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"in-stream", "post-stream", "exact:", "ARE"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

// TestRunBinaryInput feeds gps-sample a GPSB binary stream; the format is
// auto-detected and the run must match the text-format run exactly.
func TestRunBinaryInput(t *testing.T) {
	edges := gen.HolmeKim(500, 4, 0.6, 3)
	dir := t.TempDir()
	textPath := filepath.Join(dir, "g.txt")
	binPath := filepath.Join(dir, "g.gpsb")
	ft, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.WriteEdgeList(ft, edges); err != nil {
		t.Fatal(err)
	}
	ft.Close()
	fb, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.WriteBinary(fb, edges); err != nil {
		t.Fatal(err)
	}
	fb.Close()

	var outText, outBin, errw bytes.Buffer
	if err := run([]string{"-in", textPath, "-m", "400", "-exact"}, &outText, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", binPath, "-m", "400", "-exact"}, &outBin, &errw); err != nil {
		t.Fatal(err)
	}
	if outText.String() != outBin.String() {
		t.Fatalf("binary-input run diverges from text-input run:\n%s\nvs\n%s", outBin.String(), outText.String())
	}
}

func TestRunCheckpointsAndWeights(t *testing.T) {
	path := writeGraph(t)
	for _, w := range []string{"triangle", "uniform", "adjacency", "adaptive"} {
		var out, errw bytes.Buffer
		err := run([]string{"-in", path, "-m", "300", "-weight", w, "-permute", "-checkpoints", "4"}, &out, &errw)
		if err != nil {
			t.Fatalf("weight %s: %v", w, err)
		}
		if lines := strings.Count(out.String(), "\n"); lines < 6 {
			t.Fatalf("weight %s: too little output (%d lines)", w, lines)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeGraph(t)
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},                               // missing -in
		{"-in", "/nonexistent/file"},     // unreadable
		{"-in", path, "-weight", "nope"}, // unknown weight
		{"-in", path, "-m", "0"},         // invalid capacity
		{"-in", empty},                   // empty graph
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}

// TestRunCheckpointResume simulates a crash: one run stops mid-stream and
// writes a checkpoint, a second run restores it and finishes. The resumed
// run's complete output must equal an uninterrupted run's byte for byte —
// the CLI face of the bit-identical restore guarantee.
func TestRunCheckpointResume(t *testing.T) {
	path := writeGraph(t)
	ckpt := filepath.Join(t.TempDir(), "mid.gpsc")
	base := []string{"-in", path, "-m", "300", "-weight", "triangle", "-seed", "9", "-permute"}

	var full, crash, resumed, errw bytes.Buffer
	if err := run(base, &full, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...),
		"-checkpoint-at", "1000", "-checkpoint-out", ckpt), &crash, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(crash.String(), "checkpoint:") {
		t.Fatalf("crash run did not report its checkpoint:\n%s", crash.String())
	}
	if err := run(append(append([]string{}, base...), "-restore", ckpt), &resumed, &errw); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != full.String() {
		t.Fatalf("resumed output differs from uninterrupted run:\n--- resumed\n%s--- full\n%s",
			resumed.String(), full.String())
	}
}

// TestRunCheckpointFlagValidation pins the CLI-level checkpoint errors.
func TestRunCheckpointFlagValidation(t *testing.T) {
	path := writeGraph(t)
	var out, errw bytes.Buffer
	if err := run([]string{"-in", path, "-checkpoint-at", "10"}, &out, &errw); err == nil {
		t.Fatal("-checkpoint-at without -checkpoint-out accepted")
	}
	ck := filepath.Join(t.TempDir(), "x.gpsc")
	if err := run([]string{"-in", path, "-weight", "adaptive", "-checkpoint-out", ck}, &out, &errw); err == nil {
		t.Fatal("checkpointing the adaptive weight accepted")
	}
	if err := run([]string{"-in", path, "-restore", filepath.Join(t.TempDir(), "missing")}, &out, &errw); err == nil {
		t.Fatal("restore from missing file accepted")
	}
}

// TestRunRestoreRejectsMismatchedInput guards against silently "finishing"
// a resume against the wrong stream: if the input cannot supply the
// checkpointed prefix, the run must fail instead of printing estimates.
func TestRunRestoreRejectsMismatchedInput(t *testing.T) {
	path := writeGraph(t)
	ckpt := filepath.Join(t.TempDir(), "mid.gpsc")
	var out, errw bytes.Buffer
	if err := run([]string{"-in", path, "-m", "300", "-seed", "9",
		"-checkpoint-at", "1000", "-checkpoint-out", ckpt}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	// A much shorter input cannot contain the 1000-edge prefix.
	short := filepath.Join(t.TempDir(), "short.txt")
	f, err := os.Create(short)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.WriteEdgeList(f, gen.HolmeKim(100, 3, 0.5, 8)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	err = run([]string{"-in", short, "-m", "300", "-seed", "9", "-restore", ckpt}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "resume needs the same") {
		t.Fatalf("mismatched resume not rejected: %v", err)
	}
	// Same file, but a different stream order (forgotten -permute or a
	// different seed) must be caught by the recorded stream binding.
	ckptPerm := filepath.Join(t.TempDir(), "perm.gpsc")
	if err := run([]string{"-in", path, "-m", "300", "-seed", "9", "-permute",
		"-checkpoint-at", "1000", "-checkpoint-out", ckptPerm}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-in", path, "-m", "300", "-seed", "9", "-restore", ckptPerm}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "resume needs the same") {
		t.Fatalf("forgotten -permute not rejected: %v", err)
	}
	err = run([]string{"-in", path, "-m", "300", "-seed", "10", "-permute", "-restore", ckptPerm}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "resume needs the same") {
		t.Fatalf("different permutation seed not rejected: %v", err)
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gps/internal/gen"
	"gps/internal/stream"
)

func writeGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := stream.WriteEdgeList(f, gen.HolmeKim(500, 4, 0.6, 3)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBasic(t *testing.T) {
	path := writeGraph(t)
	var out, errw bytes.Buffer
	if err := run([]string{"-in", path, "-m", "400", "-exact"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"in-stream", "post-stream", "exact:", "ARE"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

// TestRunBinaryInput feeds gps-sample a GPSB binary stream; the format is
// auto-detected and the run must match the text-format run exactly.
func TestRunBinaryInput(t *testing.T) {
	edges := gen.HolmeKim(500, 4, 0.6, 3)
	dir := t.TempDir()
	textPath := filepath.Join(dir, "g.txt")
	binPath := filepath.Join(dir, "g.gpsb")
	ft, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.WriteEdgeList(ft, edges); err != nil {
		t.Fatal(err)
	}
	ft.Close()
	fb, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.WriteBinary(fb, edges); err != nil {
		t.Fatal(err)
	}
	fb.Close()

	var outText, outBin, errw bytes.Buffer
	if err := run([]string{"-in", textPath, "-m", "400", "-exact"}, &outText, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", binPath, "-m", "400", "-exact"}, &outBin, &errw); err != nil {
		t.Fatal(err)
	}
	if outText.String() != outBin.String() {
		t.Fatalf("binary-input run diverges from text-input run:\n%s\nvs\n%s", outBin.String(), outText.String())
	}
}

func TestRunCheckpointsAndWeights(t *testing.T) {
	path := writeGraph(t)
	for _, w := range []string{"triangle", "uniform", "adjacency", "adaptive"} {
		var out, errw bytes.Buffer
		err := run([]string{"-in", path, "-m", "300", "-weight", w, "-permute", "-checkpoints", "4"}, &out, &errw)
		if err != nil {
			t.Fatalf("weight %s: %v", w, err)
		}
		if lines := strings.Count(out.String(), "\n"); lines < 6 {
			t.Fatalf("weight %s: too little output (%d lines)", w, lines)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeGraph(t)
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},                               // missing -in
		{"-in", "/nonexistent/file"},     // unreadable
		{"-in", path, "-weight", "nope"}, // unknown weight
		{"-in", path, "-m", "0"},         // invalid capacity
		{"-in", empty},                   // empty graph
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}

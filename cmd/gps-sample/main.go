// Command gps-sample runs Graph Priority Sampling over an edge-stream file
// and prints triangle/wedge/clustering estimates with 95% confidence bounds.
// Both stream formats are accepted and auto-detected: plain-text "u v"
// lines and the binary GPSB framing written by gps-gen -format binary.
//
// Usage:
//
//	gps-sample -in graph.txt -m 100000 [-weight triangle|uniform|adjacency|adaptive]
//	           [-permute] [-seed S] [-exact] [-half-life H] [-checkpoints N]
//	           [-checkpoint-out f.gpsc] [-checkpoint-at N] [-restore f.gpsc]
//
// With -half-life H the sampler runs forward-decay (time-decayed) sampling:
// estimates target decayed counts at the stream's event horizon, using the
// input's timestamps (third edge-list column or GPSB v2) or, on untimed
// inputs, arrival order. A decayed checkpoint resumes only under the same
// -half-life (the stream binding records it).
//
// With -checkpoints > 0 the in-stream estimates are printed at evenly spaced
// stream positions (real-time tracking); otherwise only the final estimates
// are printed. With -exact the exact counts are computed for comparison.
//
// Durability: -checkpoint-out writes a GPSC checkpoint of the in-stream
// estimator when the run ends (atomically; with -checkpoint-at N, after N
// processed edges, simulating a crash at that point). -restore resumes from
// such a checkpoint: rerun with the *same* input file and flags and the
// consumed prefix is skipped, so the resumed run finishes exactly like an
// uninterrupted one. The adaptive weight carries state outside the sampler
// and cannot be checkpointed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gps"
	"gps/internal/checkpoint"
	"gps/internal/core"
	"gps/internal/exact"
	"gps/internal/graph"
	"gps/internal/stats"
	"gps/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "gps-sample: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, errw io.Writer) (err error) {
	// The decay overflow guard is the one panic an operator can reach with
	// flags + data alone; surface it as a normal CLI error, not a trace.
	defer func() {
		if r := recover(); r != nil {
			if oe, ok := r.(core.DecayOverflowError); ok {
				err = fmt.Errorf("%s", oe.Error())
				return
			}
			panic(r)
		}
	}()
	fs := flag.NewFlagSet("gps-sample", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		in          = fs.String("in", "", "input edge-list file (required)")
		m           = fs.Int("m", 100000, "reservoir capacity")
		weightName  = fs.String("weight", "triangle", "weight function: triangle, uniform, adjacency, adaptive")
		permute     = fs.Bool("permute", false, "stream a random permutation instead of file order")
		seed        = fs.Uint64("seed", 1, "sampler (and permutation) seed")
		withExact   = fs.Bool("exact", false, "also compute exact counts for comparison")
		halfLife    = fs.Float64("half-life", 0, "forward-decay half-life in event-time units (0 disables time-decayed sampling)")
		checkpoints = fs.Int("checkpoints", 0, "print tracking estimates at N stream positions")
		ckptOut     = fs.String("checkpoint-out", "", "write a GPSC checkpoint here when the run ends")
		ckptAt      = fs.Int("checkpoint-at", 0, "stop after N processed edges and write -checkpoint-out (simulated crash)")
		restore     = fs.String("restore", "", "resume from a GPSC checkpoint written by -checkpoint-out (same input and flags)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	if *ckptAt > 0 && *ckptOut == "" {
		return fmt.Errorf("-checkpoint-at requires -checkpoint-out")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	edges, err := stream.ReadEdges(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(edges) == 0 {
		return fmt.Errorf("%s: no edges", *in)
	}

	// The stream binding ties a checkpoint to the deterministic pipeline
	// that produced it: edge count, ordering mode and permutation seed. A
	// resume whose rebuilt stream has a different binding would skip the
	// prefix of a differently-ordered stream and silently compute garbage.
	streamBinding := fmt.Sprintf("edges=%d;order=file", len(edges))
	if *permute {
		streamBinding = fmt.Sprintf("edges=%d;order=permuted;seed=%d", len(edges), *seed^0xfeed)
	}
	if *halfLife != 0 {
		// Decay changes every priority, so a decayed checkpoint must only
		// resume under the same half-life (undecayed bindings keep their
		// historical form).
		streamBinding += fmt.Sprintf(";half-life=%g", *halfLife)
	}

	var est *gps.InStream
	effectiveWeight := *weightName
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			return err
		}
		stored := ""
		est2, binding, err := gps.ReadInStreamCheckpoint(f, func(name string) (gps.WeightFunc, error) {
			stored = name
			return gps.ResolveWeight(name)
		})
		f.Close()
		if err != nil {
			return err
		}
		if binding != streamBinding {
			return fmt.Errorf("checkpoint was taken over stream %q but the flags rebuild stream %q; "+
				"resume needs the same input file, -permute and -seed as the original run",
				binding, streamBinding)
		}
		est = est2
		if stored != *weightName {
			fmt.Fprintf(errw, "gps-sample: restoring with weight %q from checkpoint (flag said %q)\n",
				stored, *weightName)
		}
		effectiveWeight = stored
		fmt.Fprintf(errw, "gps-sample: restored %s at stream position %d (m=%d)\n",
			*restore, est.Sampler().Processed(), est.Sampler().Capacity())
	} else {
		var weight gps.WeightFunc
		switch *weightName {
		case "triangle":
			weight = gps.TriangleWeight
		case "uniform":
			weight = gps.UniformWeight
		case "adjacency":
			weight = gps.AdjacencyWeight
		case "adaptive":
			if *ckptOut != "" {
				return fmt.Errorf("the stateful adaptive weight cannot be checkpointed")
			}
			weight = gps.NewAdaptiveTriangleWeight(0.5)
		default:
			return fmt.Errorf("unknown weight %q", *weightName)
		}
		est, err = gps.NewInStream(gps.Config{
			Capacity: *m,
			Weight:   weight,
			Seed:     *seed,
			Decay:    gps.Decay{HalfLife: *halfLife},
		})
		if err != nil {
			return err
		}
	}

	var src gps.Stream = stream.Simplify(stream.FromEdges(edges))
	if *permute {
		src = stream.Simplify(stream.Permute(edges, *seed^0xfeed))
	}
	// Resume: the restored estimator already consumed a prefix of this
	// exact (deterministically rebuilt) stream; skip it, keeping the
	// simplifier's duplicate state intact. A short skip means the input is
	// not the stream the checkpoint was taken from — refuse to "finish" a
	// run that cannot line up.
	skip := est.Sampler().Processed()
	if got := stream.Skip(src, skip); got < skip {
		return fmt.Errorf("checkpoint was taken at stream position %d but the input yields only %d edges; "+
			"resume needs the same file and flags as the original run", skip, got)
	}

	every := 0
	if *checkpoints > 0 {
		every = len(edges) / *checkpoints
		if every < 1 {
			every = 1
		}
		fmt.Fprintln(stdout, "t\ttriangles\tLB\tUB\twedges\tclustering")
	}
	t := int(skip)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		est.Process(e)
		t++
		if every > 0 && t%every == 0 {
			cur := est.Estimates()
			iv := cur.TriangleInterval()
			fmt.Fprintf(stdout, "%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.4f\n",
				t, cur.Triangles, iv.Lower, iv.Upper, cur.Wedges, cur.GlobalClustering())
		}
		if *ckptAt > 0 && t >= *ckptAt {
			// Simulated crash: persist and stop mid-stream.
			n, err := writeCheckpoint(*ckptOut, est, effectiveWeight, streamBinding)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "checkpoint: %s (%d bytes) at stream position %d\n", *ckptOut, n, t)
			return nil
		}
	}

	if *ckptOut != "" {
		n, err := writeCheckpoint(*ckptOut, est, effectiveWeight, streamBinding)
		if err != nil {
			return err
		}
		fmt.Fprintf(errw, "gps-sample: checkpoint %s (%d bytes) at stream position %d\n", *ckptOut, n, t)
	}

	final := est.Estimates()
	post := gps.EstimatePost(est.Sampler())
	fmt.Fprintf(stdout, "\nstream: %d arrivals, sampled %d edges (threshold %.4g)\n",
		final.Arrivals, final.SampledEdges, est.Sampler().Threshold())
	if final.Decayed {
		fmt.Fprintf(stdout, "decay: half-life %g, horizon %d, decayed edge count %.1f\n",
			*halfLife, final.DecayHorizon, final.DecayedEdges)
	}
	printEst(stdout, "in-stream  ", final)
	printEst(stdout, "post-stream", post)

	if *withExact {
		truth := exact.Count(graph.BuildStatic(edges))
		fmt.Fprintf(stdout, "\nexact: triangles=%d wedges=%d clustering=%.4f\n",
			truth.Triangles, truth.Wedges, truth.GlobalClustering())
		fmt.Fprintf(stdout, "in-stream ARE: triangles=%.4f wedges=%.4f clustering=%.4f\n",
			stats.ARE(final.Triangles, float64(truth.Triangles)),
			stats.ARE(final.Wedges, float64(truth.Wedges)),
			stats.ARE(final.GlobalClustering(), truth.GlobalClustering()))
	}
	return nil
}

// writeCheckpoint persists the estimator atomically (temp file + rename) so
// a crash mid-write never leaves a torn checkpoint behind.
func writeCheckpoint(path string, est *gps.InStream, weightName, streamBinding string) (int64, error) {
	return checkpoint.WriteFileAtomic(path, func(w io.Writer) error {
		return est.WriteCheckpoint(w, weightName, streamBinding)
	})
}

func printEst(w io.Writer, name string, e gps.Estimates) {
	tri := e.TriangleInterval()
	wed := e.WedgeInterval()
	cc := e.ClusteringInterval()
	fmt.Fprintf(w, "%s: triangles=%.0f [%.0f, %.0f]  wedges=%.0f [%.0f, %.0f]  clustering=%.4f [%.4f, %.4f]\n",
		name, e.Triangles, tri.Lower, tri.Upper,
		e.Wedges, wed.Lower, wed.Upper,
		e.GlobalClustering(), cc.Lower, cc.Upper)
}

// Command gps-sample runs Graph Priority Sampling over an edge-stream file
// and prints triangle/wedge/clustering estimates with 95% confidence bounds.
// Both stream formats are accepted and auto-detected: plain-text "u v"
// lines and the binary GPSB framing written by gps-gen -format binary.
//
// Usage:
//
//	gps-sample -in graph.txt -m 100000 [-weight triangle|uniform|adjacency|adaptive]
//	           [-permute] [-seed S] [-exact] [-checkpoints N]
//
// With -checkpoints > 0 the in-stream estimates are printed at evenly spaced
// stream positions (real-time tracking); otherwise only the final estimates
// are printed. With -exact the exact counts are computed for comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gps"
	"gps/internal/exact"
	"gps/internal/graph"
	"gps/internal/stats"
	"gps/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "gps-sample: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, errw io.Writer) error {
	fs := flag.NewFlagSet("gps-sample", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		in          = fs.String("in", "", "input edge-list file (required)")
		m           = fs.Int("m", 100000, "reservoir capacity")
		weightName  = fs.String("weight", "triangle", "weight function: triangle, uniform, adjacency, adaptive")
		permute     = fs.Bool("permute", false, "stream a random permutation instead of file order")
		seed        = fs.Uint64("seed", 1, "sampler (and permutation) seed")
		withExact   = fs.Bool("exact", false, "also compute exact counts for comparison")
		checkpoints = fs.Int("checkpoints", 0, "print tracking estimates at N stream positions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	edges, err := stream.ReadEdges(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(edges) == 0 {
		return fmt.Errorf("%s: no edges", *in)
	}

	var weight gps.WeightFunc
	switch *weightName {
	case "triangle":
		weight = gps.TriangleWeight
	case "uniform":
		weight = gps.UniformWeight
	case "adjacency":
		weight = gps.AdjacencyWeight
	case "adaptive":
		weight = gps.NewAdaptiveTriangleWeight(0.5)
	default:
		return fmt.Errorf("unknown weight %q", *weightName)
	}

	var src gps.Stream = stream.Simplify(stream.FromEdges(edges))
	if *permute {
		src = stream.Simplify(stream.Permute(edges, *seed^0xfeed))
	}

	est, err := gps.NewInStream(gps.Config{Capacity: *m, Weight: weight, Seed: *seed})
	if err != nil {
		return err
	}

	every := 0
	if *checkpoints > 0 {
		every = len(edges) / *checkpoints
		if every < 1 {
			every = 1
		}
		fmt.Fprintln(stdout, "t\ttriangles\tLB\tUB\twedges\tclustering")
	}
	t := 0
	gps.Drive(src, func(e graph.Edge) {
		est.Process(e)
		t++
		if every > 0 && t%every == 0 {
			cur := est.Estimates()
			iv := cur.TriangleInterval()
			fmt.Fprintf(stdout, "%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.4f\n",
				t, cur.Triangles, iv.Lower, iv.Upper, cur.Wedges, cur.GlobalClustering())
		}
	})

	final := est.Estimates()
	post := gps.EstimatePost(est.Sampler())
	fmt.Fprintf(stdout, "\nstream: %d arrivals, sampled %d edges (threshold %.4g)\n",
		final.Arrivals, final.SampledEdges, est.Sampler().Threshold())
	printEst(stdout, "in-stream  ", final)
	printEst(stdout, "post-stream", post)

	if *withExact {
		truth := exact.Count(graph.BuildStatic(edges))
		fmt.Fprintf(stdout, "\nexact: triangles=%d wedges=%d clustering=%.4f\n",
			truth.Triangles, truth.Wedges, truth.GlobalClustering())
		fmt.Fprintf(stdout, "in-stream ARE: triangles=%.4f wedges=%.4f clustering=%.4f\n",
			stats.ARE(final.Triangles, float64(truth.Triangles)),
			stats.ARE(final.Wedges, float64(truth.Wedges)),
			stats.ARE(final.GlobalClustering(), truth.GlobalClustering()))
	}
	return nil
}

func printEst(w io.Writer, name string, e gps.Estimates) {
	tri := e.TriangleInterval()
	wed := e.WedgeInterval()
	cc := e.ClusteringInterval()
	fmt.Fprintf(w, "%s: triangles=%.0f [%.0f, %.0f]  wedges=%.0f [%.0f, %.0f]  clustering=%.4f [%.4f, %.4f]\n",
		name, e.Triangles, tri.Lower, tri.Upper,
		e.Wedges, wed.Lower, wed.Upper,
		e.GlobalClustering(), cc.Lower, cc.Upper)
}

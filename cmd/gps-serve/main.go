// Command gps-serve runs the GPS live sampling service: it ingests an edge
// stream over HTTP and answers triangle/wedge/subgraph queries from
// staleness-bounded snapshots while ingestion continues.
//
// Usage:
//
//	gps-serve -addr :8080 -m 100000 [-weight triangle|uniform|adjacency]
//	          [-shards P] [-queue 64] [-staleness 250ms] [-seed S]
//	          [-half-life H] [-window W -pane P] [-restore path]
//	          [-streams manifest.json] [-checkpoint-dir dir]
//	          [-checkpoint-every 30s] [-checkpoint-keep 3]
//	          [-pprof addr] [-log-requests]
//
// Multi-tenant streams: the server always hosts a "default" stream shaped
// by the flags above; -streams FILE declares additional named streams at
// boot (a JSON array of specs — name plus optional capacity, weight, seed,
// shards, half_life, window, pane_width, queue_depth; omitted fields
// inherit the flags). Streams can also be created and deleted at runtime
// via POST/DELETE /v1/streams/{name}, and every /v1/* endpoint takes an
// optional ?stream=NAME selector (absent = the default stream). Each
// stream has its own engine, bounded ingest queue and fair share of
// -max-pending, so one saturating tenant is rejected alone. Persisted
// checkpoints cover every stream in one file and restore per stream.
//
// Temporal sampling: -half-life H enables forward-decay sampling — recent
// edges dominate the reservoir and /v1/estimate reports decayed counts at
// the stream's event horizon. Event times arrive via the GPSB v2 framing
// (gps-gen -timestamps) or a third edge-list column; untimed streams decay
// by stream position, so H is then measured in arrivals.
//
// Sliding windows: -window W keeps a chain of time-partitioned panes so
// /v1/estimate?window=w answers "the trailing w event-time units, exactly"
// for any w <= W; -pane sets the pane granularity (default W — panes bound
// memory, not accuracy, since queries trim to the exact window edge).
// Windowed servers accept turnstile deletions (GPSB v3, or "del u v" text
// records) like any other, and are mutually exclusive with -half-life.
//
// Durability: -checkpoint-dir enables POST /v1/checkpoint and (with
// -checkpoint-every) periodic checkpoints of the whole sampler data plane,
// written atomically and retention-pruned to -checkpoint-keep files.
// -restore boots from a GPSC checkpoint (a file, or a directory whose
// newest checkpoint is used); the restored engine continues bit-identically
// from the persisted stream position, and the checkpoint's capacity,
// weight and shard count override the corresponding flags.
//
// Robustness: -estimate-deadline bounds how long a query waits for a
// snapshot refresh before the previous snapshot is served flagged
// "degraded"; -max-inflight-queries sheds excess concurrent estimates with
// 429 + Retry-After. -grace bounds the shutdown drain, and
// -checkpoint-on-shutdown persists a final checkpoint (after the HTTP
// drain, covering every acknowledged batch) before the process exits.
// -faults/-fault-seed (or the GPS_FAULTS env var) arm the deterministic
// fault-injection registry for chaos drills — never use in production; the
// armed rules are visible in /v1/stats as fault_points.
//
// Observability: GET /metrics serves the Prometheus text exposition of the
// whole stack (HTTP, serve pipeline, engine, estimator, checkpoint I/O);
// -log-requests adds one key=value log line per API request carrying the
// response's X-Request-Id. -pprof ADDR serves net/http/pprof plus /metrics
// on a second listener kept separate from the API port (bind it to loopback
// in production). Off by default; /v1/stats carries the cheap always-on
// gauges (ring depths, router stalls, shard backlog) so profiling is only
// needed for deep dives.
//
// Endpoints:
//
//	POST /v1/ingest             edge batch: binary frames (Content-Type
//	                            application/x-gps-edges) or text "u v" lines;
//	                            503 + Retry-After under backpressure
//	GET  /v1/estimate           triangle/wedge/clustering estimates with 95%
//	                            CIs; ?max_stale=250ms bounds snapshot age;
//	                            ?window=w queries a trailing window (-window)
//	POST /v1/estimate/subgraph  {"edges": [[u,v],...]} → Horvitz-Thompson
//	                            subgraph estimate + variance
//	POST /v1/flush              block until everything enqueued has been
//	                            sampled (read-your-writes sequencing)
//	POST /v1/checkpoint         drain the queue and persist a checkpoint to
//	                            -checkpoint-dir; returns its path and size
//	GET  /v1/checkpoint         stream a checkpoint of the current state
//	                            (host migration without shared disk)
//	GET  /v1/streams            list live streams and their configs
//	POST /v1/streams/{name}     create a named stream (optional JSON spec body)
//	DELETE /v1/streams/{name}   delete a named stream (drains its queue first)
//	GET  /v1/subscribe          server-sent events: one estimate per snapshot
//	                            epoch of the selected stream
//	GET  /v1/stats              ingest/queue/snapshot/checkpoint counters
//	                            (typed, schema_version 2, per-stream section)
//	GET  /metrics               Prometheus text exposition (all layers;
//	                            named streams labeled {stream="name"})
//	GET  /healthz               liveness
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gps/internal/fault"
	"gps/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil, nil); err != nil {
		fmt.Fprintf(os.Stderr, "gps-serve: %v\n", err)
		os.Exit(1)
	}
}

// loadStreamManifest reads a -streams boot manifest: a JSON array of stream
// specs, or an object wrapping one under "streams" (the same shape
// GET /v1/streams lists). Every spec must carry a name; its other fields
// inherit the server's flag-derived defaults.
func loadStreamManifest(path string) ([]serve.StreamSpec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var specs []serve.StreamSpec
	if err := json.Unmarshal(raw, &specs); err != nil {
		var wrapped struct {
			Streams []serve.StreamSpec `json:"streams"`
		}
		if werr := json.Unmarshal(raw, &wrapped); werr != nil {
			return nil, fmt.Errorf("%s: want a JSON array of stream specs or {\"streams\": [...]}: %w", path, err)
		}
		specs = wrapped.Streams
	}
	for i, sp := range specs {
		if sp.Name == "" {
			return nil, fmt.Errorf("%s: stream %d has no name", path, i)
		}
	}
	return specs, nil
}

// run starts the service and blocks until shutdown is signalled (SIGINT/
// SIGTERM, or stop closing when non-nil). When ready is non-nil it receives
// the bound address once the listener is up — the hook the end-to-end test
// and smoke scripts use to avoid port races.
func run(args []string, errw io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("gps-serve", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		m           = fs.Int("m", 100000, "reservoir capacity")
		weightName  = fs.String("weight", "triangle", "weight function: triangle, uniform, adjacency")
		shards      = fs.Int("shards", 0, "engine shard count (0 = GOMAXPROCS)")
		queue       = fs.Int("queue", 64, "max pending ingest batches before 503")
		maxPending  = fs.Int("max-pending", 4<<20, "max decoded edges waiting in the ingest queue before 503")
		staleness   = fs.Duration("staleness", 250*time.Millisecond, "default snapshot staleness bound")
		halfLife    = fs.Float64("half-life", 0, "forward-decay half-life in event-time units (0 disables time-decayed sampling)")
		window      = fs.Uint64("window", 0, "sliding-window width in event-time units (0 disables windowed sampling)")
		pane        = fs.Uint64("pane", 0, "window pane width in event-time units (0 = -window; needs -window)")
		seed        = fs.Uint64("seed", 1, "sampler seed")
		maxBody     = fs.Int64("max-body", 32<<20, "max ingest body bytes")
		restore     = fs.String("restore", "", "boot from a GPSC checkpoint (file, or dir holding *.gpsc)")
		streamsFile = fs.String("streams", "", "JSON manifest of named streams to create at boot (array of specs, or {\"streams\": [...]})")
		ckptDir     = fs.String("checkpoint-dir", "", "directory for POST /v1/checkpoint and periodic checkpoints")
		ckptEvery   = fs.Duration("checkpoint-every", 0, "periodic checkpoint interval (0 disables; needs -checkpoint-dir)")
		ckptKeep    = fs.Int("checkpoint-keep", 3, "checkpoint files kept by retention")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof and /metrics on this address (separate listener; empty disables)")
		logReqs     = fs.Bool("log-requests", false, "log one key=value line per API request (id, route, status, duration)")
		estDeadln   = fs.Duration("estimate-deadline", 0, "serve the previous snapshot (flagged degraded) when a refresh exceeds this (0 waits)")
		maxQueries  = fs.Int("max-inflight-queries", 0, "shed estimate/subgraph queries beyond this concurrency with 429 (0 disables)")
		grace       = fs.Duration("grace", 5*time.Second, "shutdown grace period per listener")
		ckptOnStop  = fs.Bool("checkpoint-on-shutdown", false, "persist a final checkpoint during shutdown (needs -checkpoint-dir)")
		faults      = fs.String("faults", "", "arm fault injection: \"point:kind[:k=v,...][;...]\" (or env GPS_FAULTS; chaos drills only)")
		faultSeed   = fs.Uint64("fault-seed", 1, "seed for probabilistic fault rules")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ckptEvery > 0 && *ckptDir == "" {
		return fmt.Errorf("-checkpoint-every requires -checkpoint-dir")
	}
	if *ckptOnStop && *ckptDir == "" {
		return fmt.Errorf("-checkpoint-on-shutdown requires -checkpoint-dir")
	}
	if *faults == "" {
		*faults = os.Getenv("GPS_FAULTS")
	}
	if *faults != "" {
		rules, err := fault.ParseSpec(*faults)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		fault.Arm(*faultSeed, rules)
		defer fault.Disarm()
		fmt.Fprintf(errw, "gps-serve: FAULT INJECTION ARMED (%d rules, seed %d) — chaos drill, not a production server\n",
			len(rules), *faultSeed)
	}
	weight, err := serve.WeightByName(*weightName)
	if err != nil {
		return err
	}
	var streams []serve.StreamSpec
	if *streamsFile != "" {
		streams, err = loadStreamManifest(*streamsFile)
		if err != nil {
			return fmt.Errorf("-streams: %w", err)
		}
	}
	s, err := serve.NewServer(serve.Config{
		Capacity:           *m,
		Weight:             weight,
		WeightName:         *weightName,
		Seed:               *seed,
		Shards:             *shards,
		QueueDepth:         *queue,
		MaxPendingEdges:    *maxPending,
		MaxBodyBytes:       *maxBody,
		MaxStaleness:       *staleness,
		HalfLife:           *halfLife,
		Window:             *window,
		PaneWidth:          *pane,
		EstimateDeadline:   *estDeadln,
		MaxInflightQueries: *maxQueries,
		Streams:            streams,
		RestoreFrom:        *restore,
		CheckpointDir:      *ckptDir,
		CheckpointEvery:    *ckptEvery,
		CheckpointKeep:     *ckptKeep,
		LogRequests:        *logReqs,
		LogWriter:          errw,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}

	// Profiling stays off the service port and off by default: -pprof binds a
	// second listener with its own mux (DefaultServeMux is never touched), so
	// operators can expose it on loopback only while the API faces the world.
	var ps *http.Server
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// The scrape endpoint rides the ops listener too, so a Prometheus
		// agent scoped to loopback never needs the public API port.
		pmux.Handle("/metrics", s.MetricsHandler())
		ps = &http.Server{Handler: pmux}
		s.SetPprofAddr(pln.Addr().String())
		fmt.Fprintf(errw, "gps-serve: pprof + /metrics on %s\n", pln.Addr())
		go func() { _ = ps.Serve(pln) }()
	}
	// Report the effective configuration: after a restore it comes from the
	// checkpoint, not from the flags.
	eff := s.EffectiveConfig()
	modeNote := ""
	if eff.HalfLife > 0 {
		modeNote = fmt.Sprintf(" half-life=%g", eff.HalfLife)
	}
	if eff.Window > 0 {
		modeNote = fmt.Sprintf(" window=%d pane=%d", eff.Window, eff.PaneWidth)
	}
	fmt.Fprintf(errw, "gps-serve: listening on %s (m=%d weight=%s shards=%d staleness=%s%s)\n",
		ln.Addr(), eff.Capacity, eff.WeightName, eff.Shards, *staleness, modeNote)
	if path, pos := s.Restored(); path != "" {
		fmt.Fprintf(errw, "gps-serve: restored %s at stream position %d\n", path, pos)
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-sigc:
	case <-stop:
	}
	fmt.Fprintf(errw, "gps-serve: shutting down (grace %s per listener)\n", *grace)

	// Drain the API listener first under its own deadline — a slow pprof
	// consumer must not eat the API's grace budget (and vice versa).
	apiCtx, apiCancel := context.WithTimeout(context.Background(), *grace)
	defer apiCancel()
	var errs []error
	if err := hs.Shutdown(apiCtx); err != nil {
		errs = append(errs, fmt.Errorf("api shutdown: %w", err))
		fmt.Fprintf(errw, "gps-serve: api shutdown: %v\n", err)
	}
	// With the listener drained no new batches can arrive; the final
	// checkpoint (queue drained by its flush barrier) covers every batch
	// ever acknowledged with 202.
	if *ckptOnStop {
		ckptCtx, ckptCancel := context.WithTimeout(context.Background(), *grace)
		path, pos, err := s.WriteCheckpointNow(ckptCtx)
		ckptCancel()
		if err != nil {
			errs = append(errs, fmt.Errorf("final checkpoint: %w", err))
			fmt.Fprintf(errw, "gps-serve: final checkpoint: %v\n", err)
		} else {
			fmt.Fprintf(errw, "gps-serve: final checkpoint %s at stream position %d\n", path, pos)
		}
	}
	if ps != nil {
		psCtx, psCancel := context.WithTimeout(context.Background(), *grace)
		err := ps.Shutdown(psCtx)
		psCancel()
		if err != nil {
			errs = append(errs, fmt.Errorf("pprof shutdown: %w", err))
			fmt.Fprintf(errw, "gps-serve: pprof shutdown: %v\n", err)
		}
	}
	return errors.Join(errs...)
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/stream"
)

// TestServeEndToEnd boots the real binary's run loop on an ephemeral port,
// streams a graph in over HTTP in batches, and checks the served estimates
// against the exact counts — uniform weight with capacity above the edge
// count makes the snapshot estimates exactly the true counts, which is the
// same check the CI smoke step performs with curl.
func TestServeEndToEnd(t *testing.T) {
	edges := gen.ErdosRenyi(200, 1500, 3)
	truth := exact.Count(graph.BuildStatic(edges))

	ready := make(chan string, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{
			"-addr", "127.0.0.1:0",
			"-m", fmt.Sprint(len(edges) + 100),
			"-weight", "uniform",
			"-shards", "4",
			"-staleness", "0s",
			"-seed", "7",
		}, io.Discard, ready, stop)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	// Ingest in batches, alternating wire formats.
	const batch = 400
	for lo := 0; lo < len(edges); lo += batch {
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		var body bytes.Buffer
		contentType := "text/plain"
		if (lo/batch)%2 == 0 {
			if err := stream.WriteBinary(&body, edges[lo:hi]); err != nil {
				t.Fatal(err)
			}
			contentType = stream.BinaryContentType
		} else if err := stream.WriteEdgeList(&body, edges[lo:hi]); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/ingest", contentType, &body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	resp, err := http.Post(base+"/v1/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/v1/estimate?max_stale=0s")
	if err != nil {
		t.Fatal(err)
	}
	var est struct {
		Triangles    float64 `json:"triangles"`
		Wedges       float64 `json:"wedges"`
		Arrivals     uint64  `json:"arrivals"`
		SampledEdges int     `json:"sampled_edges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if est.Arrivals != uint64(len(edges)) {
		t.Fatalf("arrivals = %d, want %d", est.Arrivals, len(edges))
	}
	if est.Triangles != float64(truth.Triangles) || est.Wedges != float64(truth.Wedges) {
		t.Fatalf("served (%.0f, %.0f) != exact (%d, %d)",
			est.Triangles, est.Wedges, truth.Triangles, truth.Wedges)
	}

	// Subgraph query for an edge known to be sampled.
	body := fmt.Sprintf(`{"edges": [[%d,%d]]}`, edges[0].U, edges[0].V)
	resp, err = http.Post(base+"/v1/estimate/subgraph?max_stale=0s", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		Estimate float64 `json:"estimate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.Estimate != 1 {
		t.Fatalf("subgraph estimate = %v, want 1 (nothing evicted)", sub.Estimate)
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}
}

// syncBuffer lets the test read run's log output while the server goroutine
// is still writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServePprofListener boots with -pprof on an ephemeral port and checks
// the profiling surface lives on its own listener: the pprof index answers
// there, and the API port does NOT serve /debug/pprof/ (off by default and
// never mixed into the service mux).
func TestServePprofListener(t *testing.T) {
	var logs syncBuffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{
			"-addr", "127.0.0.1:0",
			"-pprof", "127.0.0.1:0",
			"-m", "100",
			"-weight", "uniform",
		}, &logs, ready, stop)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	// The pprof address is reported on the log line before ready fires.
	m := regexp.MustCompile(`pprof \+ /metrics on (\S+)`).FindStringSubmatch(logs.String())
	if m == nil {
		t.Fatalf("no pprof address in logs: %q", logs.String())
	}
	resp, err := http.Get("http://" + m[1] + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d, want 200", resp.StatusCode)
	}
	// The ops listener also carries the scrape endpoint, and /v1/stats
	// reports where it was bound.
	resp, err = http.Get("http://" + m[1] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof listener /metrics status %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		PprofAddr string `json:"pprof_addr"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.PprofAddr != m[1] {
		t.Errorf("stats pprof_addr = %q, want the logged %q", st.PprofAddr, m[1])
	}
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("API listener serves /debug/pprof/ — profiling leaked onto the service port")
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}
}

// TestServeBadFlags covers flag validation without binding a port.
func TestServeBadFlags(t *testing.T) {
	if err := run([]string{"-weight", "nope"}, io.Discard, nil, nil); err == nil {
		t.Fatal("unknown weight accepted")
	}
	if err := run([]string{"-weight", "adaptive"}, io.Discard, nil, nil); err == nil {
		t.Fatal("adaptive weight accepted")
	}
	if err := run([]string{"-m", "0", "-weight", "uniform"}, io.Discard, nil, nil); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

// TestServeCheckpointRestartFlow drives the durability flags end to end:
// boot with -checkpoint-dir, ingest a graph, persist via POST
// /v1/checkpoint, shut down, boot a second process with -restore, and
// require the estimate to still equal the exact counts without re-ingesting
// anything.
func TestServeCheckpointRestartFlow(t *testing.T) {
	edges := gen.ErdosRenyi(150, 900, 11)
	truth := exact.Count(graph.BuildStatic(edges))
	dir := t.TempDir()

	boot := func(extra ...string) (string, chan struct{}, chan error) {
		ready := make(chan string, 1)
		stop := make(chan struct{})
		errc := make(chan error, 1)
		args := append([]string{
			"-addr", "127.0.0.1:0",
			"-m", fmt.Sprint(len(edges) + 50),
			"-weight", "uniform",
			"-shards", "2",
			"-staleness", "0s",
			"-seed", "21",
			"-checkpoint-dir", dir,
		}, extra...)
		go func() { errc <- run(args, io.Discard, ready, stop) }()
		select {
		case addr := <-ready:
			return "http://" + addr, stop, errc
		case err := <-errc:
			t.Fatalf("server exited early: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("server never became ready")
		}
		panic("unreachable")
	}
	shutdown := func(stop chan struct{}, errc chan error) {
		close(stop)
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server never shut down")
		}
	}

	// First life: ingest and persist.
	base, stop, errc := boot()
	var body bytes.Buffer
	if err := stream.WriteBinary(&body, edges); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/ingest", stream.BinaryContentType, &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(base+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	resp.Body.Close()
	shutdown(stop, errc)

	// Second life: restore from the directory; the estimate must be there
	// without any ingestion.
	base, stop, errc = boot("-restore", dir)
	resp, err = http.Get(base + "/v1/estimate?max_stale=0s")
	if err != nil {
		t.Fatal(err)
	}
	var est struct {
		Triangles float64 `json:"triangles"`
		Arrivals  uint64  `json:"arrivals"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if est.Arrivals != uint64(len(edges)) || est.Triangles != float64(truth.Triangles) {
		t.Fatalf("restored estimate (%.0f at %d) != exact (%d at %d)",
			est.Triangles, est.Arrivals, truth.Triangles, len(edges))
	}
	shutdown(stop, errc)
}

// TestServeCheckpointFlagValidation pins the flag dependencies.
func TestServeCheckpointFlagValidation(t *testing.T) {
	if err := run([]string{"-checkpoint-every", "1s"}, io.Discard, nil, nil); err == nil {
		t.Fatal("-checkpoint-every without -checkpoint-dir accepted")
	}
	if err := run([]string{"-restore", "/no/such/path"}, io.Discard, nil, nil); err == nil {
		t.Fatal("restore from missing path accepted")
	}
	if err := run([]string{"-checkpoint-on-shutdown"}, io.Discard, nil, nil); err == nil {
		t.Fatal("-checkpoint-on-shutdown without -checkpoint-dir accepted")
	}
	if err := run([]string{"-faults", "not-a-spec"}, io.Discard, nil, nil); err == nil {
		t.Fatal("malformed -faults spec accepted")
	}
}

// TestServeCheckpointOnShutdown: with -checkpoint-on-shutdown the process
// persists a final checkpoint during its drain — no manual POST
// /v1/checkpoint needed — and a restored second life carries the full
// stream position.
func TestServeCheckpointOnShutdown(t *testing.T) {
	edges := gen.ErdosRenyi(120, 700, 31)
	truth := exact.Count(graph.BuildStatic(edges))
	dir := t.TempDir()

	ready := make(chan string, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{
			"-addr", "127.0.0.1:0",
			"-m", fmt.Sprint(len(edges) + 50),
			"-weight", "uniform",
			"-shards", "2",
			"-seed", "33",
			"-checkpoint-dir", dir,
			"-checkpoint-on-shutdown",
			"-grace", "5s",
		}, io.Discard, ready, stop)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	var body bytes.Buffer
	if err := stream.WriteBinary(&body, edges); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/ingest", stream.BinaryContentType, &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}

	// Second life restores the shutdown checkpoint.
	ready2 := make(chan string, 1)
	stop2 := make(chan struct{})
	errc2 := make(chan error, 1)
	go func() {
		errc2 <- run([]string{
			"-addr", "127.0.0.1:0", "-staleness", "0s", "-restore", dir,
		}, io.Discard, ready2, stop2)
	}()
	select {
	case addr := <-ready2:
		base = "http://" + addr
	case err := <-errc2:
		t.Fatalf("restored server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("restored server never became ready")
	}
	resp, err = http.Get(base + "/v1/estimate?max_stale=0s")
	if err != nil {
		t.Fatal(err)
	}
	var est struct {
		Triangles float64 `json:"triangles"`
		Arrivals  uint64  `json:"arrivals"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if est.Arrivals != uint64(len(edges)) || est.Triangles != float64(truth.Triangles) {
		t.Fatalf("restored estimate (%.0f at %d) != exact (%d at %d)",
			est.Triangles, est.Arrivals, truth.Triangles, len(edges))
	}
	close(stop2)
	if err := <-errc2; err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestServeFaultsFlag: -faults arms the injection registry for the process
// and the armed rules behave as specced over HTTP.
func TestServeFaultsFlag(t *testing.T) {
	ready := make(chan string, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{
			"-addr", "127.0.0.1:0", "-m", "100",
			"-faults", "serve.http:error:times=1",
		}, io.Discard, ready, stop)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	defer func() {
		close(stop)
		<-errc
	}()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("first request status = %d, want injected 503", resp.StatusCode)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault status = %d, want 200", resp.StatusCode)
	}
}

package gps_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"gps"
	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
)

// TestFacadeEndToEnd exercises the whole public API surface the way a
// downstream user would.
func TestFacadeEndToEnd(t *testing.T) {
	edges := gen.HolmeKim(300, 4, 0.6, 1)
	truth := exact.Count(graph.BuildStatic(edges))

	in, err := gps.NewInStream(gps.Config{Capacity: 400, Weight: gps.TriangleWeight, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	gps.Drive(gps.Permute(edges, 3), func(e gps.Edge) { in.Process(e) })

	est := in.Estimates()
	if rel := math.Abs(est.Triangles-float64(truth.Triangles)) / float64(truth.Triangles); rel > 0.30 {
		t.Errorf("in-stream triangle error %v", rel)
	}
	post := gps.EstimatePost(in.Sampler())
	if rel := math.Abs(post.Wedges-float64(truth.Wedges)) / float64(truth.Wedges); rel > 0.30 {
		t.Errorf("post wedge error %v", rel)
	}
	if iv := est.TriangleInterval(); iv.Lower > est.Triangles || iv.Upper < est.Triangles {
		t.Error("interval does not bracket estimate")
	}

	// Subgraph API through the facade.
	var sampled gps.Edge
	in.Sampler().Reservoir().ForEachEdge(func(e gps.Edge) bool { sampled = e; return false })
	if v := in.Sampler().SubgraphEstimate(sampled); v < 1 {
		t.Errorf("SubgraphEstimate(%v) = %v", sampled, v)
	}
}

// TestFacadeParallel exercises the sharded path through the public API:
// batch feeding, merging into a plain Sampler, estimation on the merged
// sample, and manual merging via MergeSamplers.
func TestFacadeParallel(t *testing.T) {
	edges := gen.HolmeKim(500, 5, 0.5, 9)
	truth := exact.Count(graph.BuildStatic(edges))

	p, err := gps.NewParallel(gps.Config{Capacity: 800, Seed: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(edges)
	merged, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Arrivals() != uint64(len(edges)) {
		t.Fatalf("merged arrivals %d, want %d", merged.Arrivals(), len(edges))
	}
	est := gps.EstimatePost(merged)
	if rel := math.Abs(est.Wedges-float64(truth.Wedges)) / float64(truth.Wedges); rel > 0.30 {
		t.Errorf("merged wedge error %v (est %v, truth %d)", rel, est.Wedges, truth.Wedges)
	}

	// Manual merge of independently-built samplers over disjoint halves.
	a, _ := gps.NewSampler(gps.Config{Capacity: 300, Seed: 5})
	b, _ := gps.NewSampler(gps.Config{Capacity: 300, Seed: 6})
	for _, e := range edges {
		if e.Key()%2 == 0 {
			a.Process(e)
		} else {
			b.Process(e)
		}
	}
	m2, err := gps.MergeSamplers([]*gps.Sampler{a, b}, gps.Config{Capacity: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Reservoir().Len() != 300 {
		t.Fatalf("manual merge Len = %d", m2.Reservoir().Len())
	}
	if m2.Threshold() < math.Max(a.Threshold(), b.Threshold()) {
		t.Error("merged threshold below shard thresholds")
	}
}

func TestFacadeEdgeListRoundTrip(t *testing.T) {
	edges := []gps.Edge{gps.NewEdge(0, 1), gps.NewEdge(1, 2)}
	var buf bytes.Buffer
	if err := gps.WriteEdgeList(&buf, edges); err != nil {
		t.Fatal(err)
	}
	got, err := gps.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != edges[0] || got[1] != edges[1] {
		t.Fatalf("round trip = %v", got)
	}
}

func TestFacadeWeights(t *testing.T) {
	s, err := gps.NewSampler(gps.Config{
		Capacity: 10,
		Weight: gps.CombineWeights(
			[]float64{0.5, 0.5},
			[]gps.WeightFunc{gps.NewTriangleWeight(9, 1), gps.NewAdjacencyWeight(1, 1)},
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Process(gps.NewEdge(1, 2))
	s.Process(gps.NewEdge(2, 3))
	if s.Reservoir().Len() != 2 {
		t.Fatalf("reservoir %d", s.Reservoir().Len())
	}
}

// ExampleNewSampler demonstrates post-stream estimation over a small stream.
func ExampleNewSampler() {
	edges := []gps.Edge{
		gps.NewEdge(0, 1), gps.NewEdge(1, 2), gps.NewEdge(0, 2), // a triangle
		gps.NewEdge(2, 3), gps.NewEdge(3, 4),
	}
	s, _ := gps.NewSampler(gps.Config{Capacity: 10, Weight: gps.TriangleWeight, Seed: 42})
	for _, e := range edges {
		s.Process(e)
	}
	est := gps.EstimatePost(s)
	fmt.Printf("triangles=%.0f wedges=%.0f clustering=%.2f\n",
		est.Triangles, est.Wedges, est.GlobalClustering())
	// Output: triangles=1 wedges=6 clustering=0.50
}

// ExampleNewInStream demonstrates running in-stream estimates.
func ExampleNewInStream() {
	edges := []gps.Edge{
		gps.NewEdge(0, 1), gps.NewEdge(1, 2), gps.NewEdge(0, 2),
		gps.NewEdge(0, 3), gps.NewEdge(1, 3),
	}
	in, _ := gps.NewInStream(gps.Config{Capacity: 10, Seed: 7})
	for _, e := range edges {
		in.Process(e)
	}
	fmt.Printf("triangles=%.0f\n", in.Estimates().Triangles)
	// Output: triangles=2
}

module gps

go 1.24

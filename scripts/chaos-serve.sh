#!/usr/bin/env bash
# Chaos drill for the live sampling service, out of process. Act 1 runs
# the in-process equivalence experiment (gps-bench -exp chaos): a faulted
# life — transient 503s, lost ingest acks, a checkpoint fsync error, a
# shard panic — must converge to estimates bit-identical to a fault-free
# baseline through the at-least-once client. Act 2 replays the same story
# against a real gps-serve process armed via -faults: a lost ack is
# retried under the same sequence number and deduplicated, a shard panic
# is healed by the supervisor with zero loss, a checkpoint refuses
# cleanly under an injected fsync error and leaves no torn file, and a
# kill -9 mid-ingest followed by -restore + re-ingest reproduces the
# exact triangle count. Failures along the way must be loud: wrong flag
# combinations exit non-zero and injected faults surface as transient
# HTTP classes with JSON error bodies, never as silent corruption.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill -9 "${server_pid:-}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

echo "== build"
go build -o "$workdir" ./cmd/gps-gen ./cmd/gps-sample ./cmd/gps-serve ./cmd/gps-bench

echo "== act 1: in-process equivalence drill (gps-bench -exp chaos)"
"$workdir/gps-bench" -exp chaos -edges 40000 -sample 4000 | tee "$workdir/chaos.txt"
grep -q 'BIT-IDENTICAL' "$workdir/chaos.txt" || fail "equivalence drill did not certify bit-identical estimates"

echo "== induced misuse must exit non-zero with an error message"
if "$workdir/gps-serve" -faults 'not-a-spec' 2> "$workdir/badspec.err"; then
    fail "gps-serve accepted a malformed -faults spec"
fi
grep -qi 'faults' "$workdir/badspec.err" || fail "malformed -faults spec produced no error message"
if "$workdir/gps-serve" -checkpoint-on-shutdown 2> "$workdir/badshutdown.err"; then
    fail "gps-serve accepted -checkpoint-on-shutdown without -checkpoint-dir"
fi
grep -qi 'checkpoint' "$workdir/badshutdown.err" || fail "-checkpoint-on-shutdown misuse produced no error message"

echo "== generate graph + exact counts"
"$workdir/gps-gen" -type hk -n 2000 -k 6 -p 0.5 -seed 42 -format binary -out "$workdir/g.gpsb"
"$workdir/gps-gen" -type hk -n 2000 -k 6 -p 0.5 -seed 42 -out "$workdir/g.txt"
exact_line=$("$workdir/gps-sample" -in "$workdir/g.gpsb" -m 100000 -weight uniform -exact | grep '^exact:')
echo "$exact_line"
exact_triangles=$(echo "$exact_line" | sed -E 's/.*triangles=([0-9]+).*/\1/')
edges=$(wc -l < "$workdir/g.txt")
half=$((edges / 2))
head -n "$half" "$workdir/g.txt" > "$workdir/g-half1.txt"
tail -n +"$((half + 1))" "$workdir/g.txt" > "$workdir/g-half2.txt"

base=http://127.0.0.1:18427
ckptdir="$workdir/ckpt"
mkdir -p "$ckptdir"

echo "== act 2: start gps-serve ARMED (lost ack + shard panic + checkpoint fsync error)"
"$workdir/gps-serve" -addr 127.0.0.1:18427 -m $((edges + 100)) -weight uniform -staleness 0s \
    -checkpoint-dir "$ckptdir" \
    -faults 'serve.ingest.ack:error:times=1;engine.shard.drain:panic:times=1;checkpoint.fsync:error:times=1' \
    -fault-seed 7 2> "$workdir/serve.log" &
server_pid=$!
for _ in $(seq 1 50); do
    curl -fsS "$base/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "$base/healthz" >/dev/null
grep -q 'FAULT INJECTION ARMED' "$workdir/serve.log" || fail "armed server did not announce fault injection"

# ingest_seq posts one batch under a fixed sequence number, retrying the
# transient classes (429/5xx) with the SAME sequence — the shell version
# of the at-least-once contract. Anything else is a hard failure and must
# carry a JSON error message.
ingest_seq() { # file seq
    local code attempt
    for attempt in $(seq 1 8); do
        code=$(curl -sS -o "$workdir/resp.json" -w '%{http_code}' -X POST \
            -H "X-GPS-Source: chaos-sh" -H "X-GPS-Seq: $2" \
            --data-binary "@$1" "$base/v1/ingest")
        case "$code" in
            202) return 0 ;;
            429 | 5??)
                grep -q '"error"' "$workdir/resp.json" || fail "transient $code without a JSON error body"
                sleep 0.2 ;;
            *) fail "ingest seq $2: status $code: $(cat "$workdir/resp.json")" ;;
        esac
    done
    fail "ingest seq $2 not acknowledged within 8 attempts"
}

echo "== ingest first half under the injected lost ack (+ shard panic on first drain)"
ingest_seq "$workdir/g-half1.txt" 1
grep -q '"duplicate":true' "$workdir/resp.json" \
    || fail "lost-ack retry was not deduplicated: $(cat "$workdir/resp.json")"
curl -fsS -X POST "$base/v1/flush" >/dev/null

stats=$(curl -fsS "$base/v1/stats")
echo "$stats" | grep -q '"shard_restarts":1' || fail "supervisor restart not visible in /v1/stats: $stats"
echo "$stats" | grep -q '"lost_edges":0' || fail "shard recovery lost edges: $stats"
echo "$stats" | grep -q '"degraded":false' || fail "exact recovery left the engine degraded: $stats"
echo "$stats" | grep -q '"fault_points"' || fail "armed server does not report fault_points in /v1/stats"
echo "OK: lost ack deduplicated; shard panic healed with zero loss"

echo "== checkpoint under the injected fsync error: transient refusal, no torn file"
code=$(curl -sS -o "$workdir/ckpt.json" -w '%{http_code}' -X POST "$base/v1/checkpoint")
[ "$code" = 503 ] || fail "checkpoint under fsync fault: status $code, want 503"
grep -q '"error"' "$workdir/ckpt.json" || fail "checkpoint refusal carried no error message"
leftovers=$(find "$ckptdir" -type f ! -name '*.gpsc' | wc -l)
[ "$leftovers" = 0 ] || fail "torn checkpoint artifacts left behind: $(ls "$ckptdir")"
curl -fsS -X POST "$base/v1/checkpoint" >/dev/null || fail "checkpoint did not recover once the fault cleared"
echo "OK: fsync fault refused with 503, retry persisted cleanly"

echo "== /metrics under chaos: lint + restart counter"
curl -fsS "$base/metrics" > "$workdir/scrape.prom"
"$workdir/gps-bench" -lint "$workdir/scrape.prom"
restarts=$(awk '$1 == "gps_engine_shard_restarts_total" { print int($2) }' "$workdir/scrape.prom")
[ "$restarts" = 1 ] || fail "gps_engine_shard_restarts_total = $restarts, want 1"

echo "== kill -9 mid-ingest, then restore"
curl -sS -X POST --data-binary "@$workdir/g-half2.txt" "$base/v1/ingest" >/dev/null || true
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true

"$workdir/gps-serve" -addr 127.0.0.1:18428 -m $((edges + 100)) -weight uniform -staleness 0s \
    -restore "$ckptdir" 2>> "$workdir/serve.log" &
server_pid=$!
base=http://127.0.0.1:18428
for _ in $(seq 1 50); do
    curl -fsS "$base/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
stats=$(curl -fsS "$base/v1/stats")
restored_position=$(echo "$stats" | sed -E 's/.*"restored_position":([0-9]+).*/\1/')
[ "$restored_position" = "$half" ] || fail "restored position $restored_position != checkpointed $half"
if echo "$stats" | grep -q '"fault_points"'; then
    fail "restored server reports fault_points while disarmed"
fi

echo "== re-ingest full stream; estimate must equal exact count"
curl -fsS -X POST -H 'Content-Type: application/x-gps-edges' \
    --data-binary "@$workdir/g.gpsb" "$base/v1/ingest" >/dev/null
curl -fsS -X POST "$base/v1/flush" >/dev/null
estimate_json=$(curl -fsS "$base/v1/estimate?max_stale=0s")
served_triangles=$(echo "$estimate_json" | sed -E 's/.*"triangles":([0-9]+(\.[0-9]+)?).*/\1/')
echo "served=$served_triangles exact=$exact_triangles"
[ "${served_triangles%.*}" = "$exact_triangles" ] \
    || fail "post-chaos estimate $served_triangles != exact $exact_triangles"
echo "$estimate_json" | grep -q '"degraded":true' && fail "post-restore estimate flagged degraded"

echo "OK: chaos drill complete — faults healed, crash restored, counts exact"

#!/usr/bin/env bash
# bench.sh — record the perf trajectory.
#
# Runs the gps-bench perf experiment (sampling update paths, slot-indexed
# vs lookup estimation, incremental snapshot stalls, the forward-decay
# update/accuracy numbers, the windowed-turnstile ingest/query/accuracy
# numbers, and the multi-tenant serve trajectory at 1/4/16 streams) and
# writes the machine-readable report to a BENCH json, which CI uploads as
# an artifact so successive PRs can be compared.
#
# Environment overrides: EDGES (stream length), SAMPLE (reservoir m),
# SHARDS (engine shard count), PROCS (comma-separated GOMAXPROCS sweep for
# the multi-core ingest trajectory; empty string skips it), OBS (set to 0
# to skip the observability-overhead measurement), PR (writes
# BENCH_PR$PR.json), OUT (explicit output path, overriding PR; default
# BENCH.json).
set -euo pipefail
cd "$(dirname "$0")/.."

EDGES=${EDGES:-1000000}
SAMPLE=${SAMPLE:-100000}
SHARDS=${SHARDS:-4}
PROCS=${PROCS:-1,2,4,8}
OBS=${OBS:-1}
if [ -n "${PR:-}" ]; then
  OUT=${OUT:-BENCH_PR${PR}.json}
else
  OUT=${OUT:-BENCH.json}
fi

# Observability overhead: run the obs experiment per build flavor
# (instrumented default vs the gps_noobs tag that compiles the hot-path
# instrumentation out) on the same stream, interleaved A/B over OBS_ROUNDS
# rounds so slow machine drift cancels, then hand all reports to the perf
# run, which min-merges each flavor's rounds and embeds the
# instrumented/noobs ratios under obs_overhead.
OBS_ROUNDS=${OBS_ROUNDS:-3}
OBS_ARGS=()
if [ "$OBS" = "1" ]; then
  obsdir=$(mktemp -d)
  trap 'rm -rf "$obsdir"' EXIT
  echo "measuring observability overhead (instrumented vs gps_noobs, $OBS_ROUNDS interleaved rounds)..." >&2
  go build -o "$obsdir/bench-instrumented" ./cmd/gps-bench
  go build -tags gps_noobs -o "$obsdir/bench-noobs" ./cmd/gps-bench
  instr_files= noobs_files=
  for round in $(seq 1 "$OBS_ROUNDS"); do
    "$obsdir/bench-instrumented" -exp obs -json \
      -edges "$EDGES" -sample "$SAMPLE" -shards "$SHARDS" > "$obsdir/obs-instrumented-$round.json"
    "$obsdir/bench-noobs" -exp obs -json \
      -edges "$EDGES" -sample "$SAMPLE" -shards "$SHARDS" > "$obsdir/obs-noobs-$round.json"
    instr_files="$instr_files${instr_files:+,}$obsdir/obs-instrumented-$round.json"
    noobs_files="$noobs_files${noobs_files:+,}$obsdir/obs-noobs-$round.json"
  done
  OBS_ARGS=(-obs-instrumented "$instr_files" -obs-noobs "$noobs_files")
fi

go run ./cmd/gps-bench -exp perf -json \
  -edges "$EDGES" -sample "$SAMPLE" -shards "$SHARDS" -procs "$PROCS" \
  "${OBS_ARGS[@]+"${OBS_ARGS[@]}"}" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"

#!/usr/bin/env bash
# bench.sh — record the perf trajectory.
#
# Runs the gps-bench perf experiment (sampling update paths, slot-indexed
# vs lookup estimation, incremental snapshot stalls, and the forward-decay
# update/accuracy numbers) and writes the machine-readable report to a
# BENCH json, which CI uploads as an artifact so successive PRs can be
# compared.
#
# Environment overrides: EDGES (stream length), SAMPLE (reservoir m),
# SHARDS (engine shard count), PROCS (comma-separated GOMAXPROCS sweep for
# the multi-core ingest trajectory; empty string skips it), PR (writes
# BENCH_PR$PR.json), OUT (explicit output path, overriding PR; default
# BENCH.json).
set -euo pipefail
cd "$(dirname "$0")/.."

EDGES=${EDGES:-1000000}
SAMPLE=${SAMPLE:-100000}
SHARDS=${SHARDS:-4}
PROCS=${PROCS:-1,2,4,8}
if [ -n "${PR:-}" ]; then
  OUT=${OUT:-BENCH_PR${PR}.json}
else
  OUT=${OUT:-BENCH.json}
fi

go run ./cmd/gps-bench -exp perf -json \
  -edges "$EDGES" -sample "$SAMPLE" -shards "$SHARDS" -procs "$PROCS" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"

#!/usr/bin/env bash
# bench.sh — record the perf trajectory.
#
# Runs the gps-bench perf experiment (slot-indexed vs lookup estimation,
# incremental snapshot stalls, sampling update paths) and writes the
# machine-readable report to BENCH_PR3.json, which CI uploads as an
# artifact so successive PRs can be compared.
#
# Environment overrides: EDGES (stream length), SAMPLE (reservoir m),
# SHARDS (engine shard count), OUT (output path).
set -euo pipefail
cd "$(dirname "$0")/.."

EDGES=${EDGES:-1000000}
SAMPLE=${SAMPLE:-100000}
SHARDS=${SHARDS:-4}
OUT=${OUT:-BENCH_PR3.json}

go run ./cmd/gps-bench -exp perf -json \
  -edges "$EDGES" -sample "$SAMPLE" -shards "$SHARDS" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"

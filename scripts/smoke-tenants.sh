#!/usr/bin/env bash
# Smoke test for the multi-tenant serve plane: start gps-serve with a
# two-stream manifest, feed each stream its own generated graph, and
# require each stream's estimate to equal its own exact triangle count —
# with uniform weights and a reservoir larger than either graph both
# estimates are exact, so a cross-stream leak shows up as a hard count
# mismatch, not noise. The second act is multi-stream durability: persist
# one KindMulti checkpoint covering both streams, kill -9 the server,
# restart with -restore alone (no manifest — the checkpoint carries the
# stream set), and require both streams to come back at their positions
# with their exact counts intact. CI runs this after the unit tests; it
# needs only curl.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill -9 "${server_pid:-}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# jnum FILE KEY: first numeric value of "key":N in a JSON file.
jnum() { sed -E "s/.*\"$2\":([0-9]+(\.[0-9]+)?).*/\1/" "$1"; }

echo "== build"
go build -o "$workdir" ./cmd/gps-gen ./cmd/gps-sample ./cmd/gps-serve

echo "== generate two disjoint tenant graphs"
"$workdir/gps-gen" -type hk -n 1500 -k 6 -p 0.5 -seed 11 -format binary -out "$workdir/a.gpsb"
"$workdir/gps-gen" -type hk -n 1200 -k 5 -p 0.4 -seed 22 -format binary -out "$workdir/b.gpsb"

exact_a=$("$workdir/gps-sample" -in "$workdir/a.gpsb" -m 100000 -weight uniform -exact | grep '^exact:' | sed -E 's/.*triangles=([0-9]+).*/\1/')
exact_b=$("$workdir/gps-sample" -in "$workdir/b.gpsb" -m 100000 -weight uniform -exact | grep '^exact:' | sed -E 's/.*triangles=([0-9]+).*/\1/')
echo "exact: stream-a=$exact_a stream-b=$exact_b"
[ "$exact_a" != "$exact_b" ] || fail "tenant graphs have equal triangle counts; the cross-check would be blind"

echo "== start gps-serve with a two-stream manifest"
cat > "$workdir/streams.json" <<'EOF'
{"streams": [{"name": "tenant-b"}]}
EOF
ckptdir="$workdir/ckpt"
mkdir -p "$ckptdir"
"$workdir/gps-serve" -addr 127.0.0.1:18427 -m 20000 -weight uniform -staleness 0s \
    -streams "$workdir/streams.json" -checkpoint-dir "$ckptdir" &
server_pid=$!
for _ in $(seq 1 50); do
    curl -fsS http://127.0.0.1:18427/healthz >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS http://127.0.0.1:18427/healthz >/dev/null

echo "== the registry lists both streams"
curl -fsS http://127.0.0.1:18427/v1/streams > "$workdir/streams-list.json"
grep -q '"default"' "$workdir/streams-list.json" || fail "listing lacks the default stream"
grep -q '"tenant-b"' "$workdir/streams-list.json" || fail "listing lacks the manifest stream"

echo "== ingest each tenant's graph into its own stream"
curl -fsS -X POST -H 'Content-Type: application/x-gps-edges' \
    --data-binary "@$workdir/a.gpsb" http://127.0.0.1:18427/v1/ingest >/dev/null
curl -fsS -X POST -H 'Content-Type: application/x-gps-edges' \
    --data-binary "@$workdir/b.gpsb" 'http://127.0.0.1:18427/v1/ingest?stream=tenant-b' >/dev/null
curl -fsS -X POST http://127.0.0.1:18427/v1/flush >/dev/null
curl -fsS -X POST 'http://127.0.0.1:18427/v1/flush?stream=tenant-b' >/dev/null

echo "== isolation cross-check: each stream answers with its own exact count"
curl -fsS 'http://127.0.0.1:18427/v1/estimate?max_stale=0s' > "$workdir/est-a.json"
curl -fsS 'http://127.0.0.1:18427/v1/estimate?stream=tenant-b&max_stale=0s' > "$workdir/est-b.json"
got_a=$(jnum "$workdir/est-a.json" triangles); got_a=${got_a%.*}
got_b=$(jnum "$workdir/est-b.json" triangles); got_b=${got_b%.*}
echo "served: stream-a=$got_a stream-b=$got_b"
[ "$got_a" = "$exact_a" ] || fail "default stream served $got_a, want its exact $exact_a"
[ "$got_b" = "$exact_b" ] || fail "tenant-b served $got_b, want its exact $exact_b"
arrivals_a=$(jnum "$workdir/est-a.json" arrivals)
arrivals_b=$(jnum "$workdir/est-b.json" arrivals)
[ "$arrivals_a" != "$arrivals_b" ] || fail "streams report identical arrivals ($arrivals_a): not isolated"
echo "OK: per-stream estimates match their own exact counts"

echo "== persist one multi-stream checkpoint, then kill -9"
curl -fsS -X POST http://127.0.0.1:18427/v1/checkpoint > "$workdir/ckpt.json"
cat "$workdir/ckpt.json"; echo
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true

echo "== restore: the checkpoint alone carries the stream set"
"$workdir/gps-serve" -addr 127.0.0.1:18428 -m 20000 -weight uniform -staleness 0s \
    -restore "$ckptdir" &
server_pid=$!
for _ in $(seq 1 50); do
    curl -fsS http://127.0.0.1:18428/healthz >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS http://127.0.0.1:18428/v1/streams > "$workdir/streams-restored.json"
grep -q '"tenant-b"' "$workdir/streams-restored.json" || fail "restore dropped the tenant-b stream"

echo "== per-stream equality after crash + restore"
curl -fsS 'http://127.0.0.1:18428/v1/estimate?max_stale=0s' > "$workdir/rest-a.json"
curl -fsS 'http://127.0.0.1:18428/v1/estimate?stream=tenant-b&max_stale=0s' > "$workdir/rest-b.json"
rest_a=$(jnum "$workdir/rest-a.json" triangles); rest_a=${rest_a%.*}
rest_b=$(jnum "$workdir/rest-b.json" triangles); rest_b=${rest_b%.*}
rest_arrivals_a=$(jnum "$workdir/rest-a.json" arrivals)
rest_arrivals_b=$(jnum "$workdir/rest-b.json" arrivals)
echo "restored: stream-a=$rest_a (arrivals $rest_arrivals_a) stream-b=$rest_b (arrivals $rest_arrivals_b)"
[ "$rest_a" = "$exact_a" ] || fail "restored default stream serves $rest_a, want $exact_a"
[ "$rest_b" = "$exact_b" ] || fail "restored tenant-b serves $rest_b, want $exact_b"
[ "$rest_arrivals_a" = "$arrivals_a" ] || fail "default stream position moved across restore: $rest_arrivals_a != $arrivals_a"
[ "$rest_arrivals_b" = "$arrivals_b" ] || fail "tenant-b position moved across restore: $rest_arrivals_b != $arrivals_b"
echo "OK: kill -9 + restore reproduces every stream's exact count at its position"

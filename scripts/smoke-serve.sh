#!/usr/bin/env bash
# Smoke test for the live sampling service: start gps-serve, ingest a
# generated graph (binary framing), query an estimate, and require it to
# equal the exact triangle count — with uniform weights and a reservoir
# larger than the graph the snapshot estimate is exact, so any drift is a
# bug, not noise. Along the way it scrapes /metrics mid-ingest and runs
# the scrape through the in-repo exposition checker (gps-bench -lint), so
# a malformed metric line fails the smoke before any dashboard sees it.
# The second act is the durability story: checkpoint mid-ingest, kill -9
# the server, restart with -restore, re-ingest, and require flush→estimate
# to equal the exact count again. CI runs this after the unit tests; it
# needs only curl.
# Induced failures are asserted to fail LOUDLY: flag misuse and corrupted
# restore sources must exit non-zero with an error message, and malformed
# requests must answer 4xx with a JSON error body — never a silent 200 or
# an empty crash.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill -9 "${server_pid:-}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# expect_http METHOD URL WANT_STATUS [curl args...]: the induced failure
# must produce exactly the expected status and a JSON error message.
expect_http() {
    local method=$1 url=$2 want=$3; shift 3
    local code
    code=$(curl -sS -o "$workdir/err.json" -w '%{http_code}' -X "$method" "$@" "$url")
    [ "$code" = "$want" ] || fail "$method $url: status $code, want $want ($(cat "$workdir/err.json"))"
    grep -q '"error"' "$workdir/err.json" || fail "$method $url: $code without a JSON error body"
}

echo "== build"
go build -o "$workdir" ./cmd/gps-gen ./cmd/gps-sample ./cmd/gps-serve ./cmd/gps-bench

echo "== generate graph (binary framing)"
"$workdir/gps-gen" -type hk -n 2000 -k 6 -p 0.5 -seed 42 -format binary -out "$workdir/g.gpsb"
"$workdir/gps-gen" -type hk -n 2000 -k 6 -p 0.5 -seed 42 -out "$workdir/g.txt"

echo "== exact counts"
exact_line=$("$workdir/gps-sample" -in "$workdir/g.gpsb" -m 100000 -weight uniform -exact | grep '^exact:')
echo "$exact_line"
exact_triangles=$(echo "$exact_line" | sed -E 's/.*triangles=([0-9]+).*/\1/')
edges=$(wc -l < "$workdir/g.txt")

echo "== induced misuse must exit non-zero with an error message"
if "$workdir/gps-serve" -restore "$workdir/no-such-dir" 2> "$workdir/restore.err"; then
    fail "gps-serve accepted a nonexistent -restore source"
fi
[ -s "$workdir/restore.err" ] || fail "bad -restore produced no error message"
if "$workdir/gps-serve" -m 0 2> "$workdir/badm.err"; then
    fail "gps-serve accepted -m 0"
fi
[ -s "$workdir/badm.err" ] || fail "bad -m produced no error message"

echo "== start gps-serve"
"$workdir/gps-serve" -addr 127.0.0.1:18423 -m $((edges + 100)) -weight uniform -staleness 0s &
server_pid=$!
for _ in $(seq 1 50); do
    curl -fsS http://127.0.0.1:18423/healthz >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS http://127.0.0.1:18423/healthz >/dev/null

echo "== ingest ${edges} edges + flush (scraping /metrics mid-ingest)"
curl -fsS -X POST -H 'Content-Type: application/x-gps-edges' \
    --data-binary "@$workdir/g.gpsb" http://127.0.0.1:18423/v1/ingest
echo
# Scrape while the pipeline may still be draining: the exposition must lint
# clean at any instant, not just at rest.
curl -fsS http://127.0.0.1:18423/metrics > "$workdir/scrape-mid.prom"
"$workdir/gps-bench" -lint "$workdir/scrape-mid.prom"
curl -fsS -X POST http://127.0.0.1:18423/v1/flush
echo

echo "== query estimate"
estimate_json=$(curl -fsS 'http://127.0.0.1:18423/v1/estimate?max_stale=0s')
echo "$estimate_json"
served_triangles=$(echo "$estimate_json" | sed -E 's/.*"triangles":([0-9]+(\.[0-9]+)?).*/\1/')
curl -fsS http://127.0.0.1:18423/v1/stats
echo

echo "== compare: served=$served_triangles exact=$exact_triangles"
if [ "${served_triangles%.*}" != "$exact_triangles" ]; then
    echo "FAIL: served triangle estimate $served_triangles != exact $exact_triangles" >&2
    exit 1
fi
echo "OK: live service estimate matches exact triangle count"

echo "== /metrics after flush: lint + cross-check against the stream"
curl -fsS http://127.0.0.1:18423/metrics > "$workdir/scrape-post.prom"
"$workdir/gps-bench" -lint "$workdir/scrape-post.prom"
processed=$(awk '$1 == "gps_serve_edges_processed_total" { print int($2) }' "$workdir/scrape-post.prom")
if [ "$processed" != "$edges" ]; then
    echo "FAIL: gps_serve_edges_processed_total $processed != ingested $edges" >&2
    exit 1
fi
echo "OK: /metrics lints clean and agrees with the ingested stream"

echo "== induced request failures must answer 4xx with an error body"
printf 'not a binary frame' > "$workdir/garbage.bin"
expect_http POST "http://127.0.0.1:18423/v1/ingest" 400 \
    -H 'Content-Type: application/x-gps-edges' --data-binary "@$workdir/garbage.bin"
expect_http POST "http://127.0.0.1:18423/v1/ingest" 400 \
    -H 'X-GPS-Source: smoke' -H 'X-GPS-Seq: not-a-number' --data-binary 'a b'
expect_http GET "http://127.0.0.1:18423/v1/estimate?max_stale=bogus" 400
expect_http POST "http://127.0.0.1:18423/v1/estimate/subgraph" 400 \
    -H 'Content-Type: application/json' -d '{"edges":[[7,7]]}'
# None of those may have perturbed the stream position.
post_fail=$(curl -fsS http://127.0.0.1:18423/v1/stats | sed -E 's/.*"edges_processed":([0-9]+).*/\1/')
[ "$post_fail" = "$edges" ] || fail "rejected requests changed edges_processed: $post_fail != $edges"
echo "OK: malformed requests are rejected loudly and change nothing"

echo "== durability: checkpoint, crash, restore"
ckptdir="$workdir/ckpt"
mkdir -p "$ckptdir"
kill "$server_pid" && wait "$server_pid" 2>/dev/null || true

# Fresh server with checkpointing on; ingest the first half of the stream,
# persist, keep ingesting, then die without warning.
half=$((edges / 2))
head -n "$half" "$workdir/g.txt" > "$workdir/g-half.txt"
"$workdir/gps-serve" -addr 127.0.0.1:18424 -m $((edges + 100)) -weight uniform \
    -staleness 0s -checkpoint-dir "$ckptdir" &
server_pid=$!
for _ in $(seq 1 50); do
    curl -fsS http://127.0.0.1:18424/healthz >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS -X POST --data-binary "@$workdir/g-half.txt" http://127.0.0.1:18424/v1/ingest >/dev/null
curl -fsS -X POST http://127.0.0.1:18424/v1/checkpoint
echo
curl -fsS -X POST --data-binary "@$workdir/g.txt" http://127.0.0.1:18424/v1/ingest >/dev/null
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true

# Restart from the checkpoint directory and re-ingest the whole stream:
# edges the checkpoint already covers are ignored as duplicates (nothing
# was evicted at this capacity), edges lost in the crash are sampled now,
# so the estimate must equal the exact count again.
"$workdir/gps-serve" -addr 127.0.0.1:18425 -m $((edges + 100)) -weight uniform \
    -staleness 0s -restore "$ckptdir" &
server_pid=$!
for _ in $(seq 1 50); do
    curl -fsS http://127.0.0.1:18425/healthz >/dev/null 2>&1 && break
    sleep 0.1
done
stats_json=$(curl -fsS http://127.0.0.1:18425/v1/stats)
restored_position=$(echo "$stats_json" | sed -E 's/.*"restored_position":([0-9]+).*/\1/')
echo "restored at position $restored_position (expected $half)"
if [ "$restored_position" != "$half" ]; then
    echo "FAIL: restored position $restored_position != checkpointed $half" >&2
    exit 1
fi
curl -fsS -X POST -H 'Content-Type: application/x-gps-edges' \
    --data-binary "@$workdir/g.gpsb" http://127.0.0.1:18425/v1/ingest >/dev/null
curl -fsS -X POST http://127.0.0.1:18425/v1/flush >/dev/null
restored_json=$(curl -fsS 'http://127.0.0.1:18425/v1/estimate?max_stale=0s')
restored_triangles=$(echo "$restored_json" | sed -E 's/.*"triangles":([0-9]+(\.[0-9]+)?).*/\1/')
echo "== compare after crash+restore: served=$restored_triangles exact=$exact_triangles"
if [ "${restored_triangles%.*}" != "$exact_triangles" ]; then
    echo "FAIL: restored estimate $restored_triangles != exact $exact_triangles" >&2
    exit 1
fi
echo "OK: crash + restore + re-ingest reproduces the exact triangle count"

echo "== a corrupted checkpoint must fail restore loudly"
kill "$server_pid" && wait "$server_pid" 2>/dev/null || true
ckpt_file=$(ls "$ckptdir"/*.gpsc | head -n 1)
head -c 100 "$ckpt_file" > "$workdir/torn.gpsc"
mkdir -p "$workdir/torn-dir"
cp "$workdir/torn.gpsc" "$workdir/torn-dir/ckpt-000001.gpsc"
if "$workdir/gps-serve" -addr 127.0.0.1:18426 -restore "$workdir/torn-dir" 2> "$workdir/torn.err"; then
    fail "gps-serve restored from a truncated checkpoint"
fi
[ -s "$workdir/torn.err" ] || fail "truncated-checkpoint restore produced no error message"
echo "OK: corrupted checkpoint rejected with: $(head -c 120 "$workdir/torn.err")"
